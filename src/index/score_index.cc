#include "index/score_index.h"

#include <algorithm>

#include "common/key_codec.h"
#include "index/result_heap.h"

namespace svr::index {

// Iterates one term's postings in (score desc, doc asc) order via a
// prefix range scan.
class ScoreIndex::TermCursor {
 public:
  TermCursor(const storage::BPlusTree* tree,
             const storage::TreeSnapshot& snap, TermId term,
             uint64_t* scanned)
      : term_(term), scanned_(scanned) {
    std::string prefix;
    PutKeyU32(&prefix, term);
    it_ = tree->SeekAt(snap, prefix);
    Decode();
  }

  bool Valid() const { return valid_; }
  double score() const { return score_; }
  DocId doc() const { return doc_; }

  void Next() {
    if (!it_->Valid()) {
      valid_ = false;
      return;
    }
    it_->Next();
    Decode();
  }

 private:
  void Decode() {
    valid_ = false;
    if (!it_->Valid()) return;
    Slice key = it_->key();
    uint32_t term;
    if (!GetKeyU32(&key, &term) || term != term_) return;
    double s;
    uint32_t d;
    if (!GetKeyDoubleDesc(&key, &s) || !GetKeyU32(&key, &d)) return;
    score_ = s;
    doc_ = d;
    valid_ = true;
    ++*scanned_;
  }

  TermId term_;
  uint64_t* scanned_;
  std::unique_ptr<storage::BPlusTree::Iterator> it_;
  bool valid_ = false;
  double score_ = 0.0;
  DocId doc_ = 0;
};

ScoreIndex::ScoreIndex(const IndexContext& ctx) : ctx_(ctx) {}

std::string ScoreIndex::PostingKey(TermId term, double score,
                                   DocId doc) const {
  std::string k;
  PutKeyU32(&k, term);
  PutKeyDoubleDesc(&k, score);
  PutKeyU32(&k, doc);
  return k;
}

Status ScoreIndex::Build() {
  // The long list is mutable, so it lives in the *list* pool as a
  // clustered B+-tree (cold-cache protocol still applies to it). Under
  // MVCC the tree is copy-on-write so snapshot queries never lock.
  auto tree =
      ctx_.list_page_retirer != nullptr
          ? storage::BPlusTree::CreateCow(ctx_.list_pool,
                                          ctx_.list_page_retirer)
          : storage::BPlusTree::Create(ctx_.list_pool);
  SVR_RETURN_NOT_OK(tree.status());
  tree_ = std::move(tree).value();
  const text::Corpus& corpus = *ctx_.corpus;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    double score = 0.0;
    bool deleted = false;
    Status st = ctx_.score_table->GetWithDeleted(d, &score, &deleted);
    if (st.IsNotFound()) {
      score = 0.0;
    } else {
      SVR_RETURN_NOT_OK(st);
      if (deleted) continue;
    }
    for (TermId t : corpus.doc(d).terms()) {
      SVR_RETURN_NOT_OK(tree_->Put(PostingKey(t, score, d), Slice()));
    }
  }
  return Status::OK();
}

Status ScoreIndex::OnScoreUpdate(DocId doc, double new_score) {
  BumpStat(&IndexStats::score_updates);
  // Never-scored docs were built at 0.0; NotFound must not fail here.
  double old_score = 0.0;
  Status get = ctx_.score_table->Get(doc, &old_score);
  if (!get.ok() && !get.IsNotFound()) return get;
  SVR_RETURN_NOT_OK(ctx_.score_table->Set(doc, new_score));
  if (old_score == new_score) return Status::OK();
  // Relocate the posting in every distinct term's list: this is the
  // method's Achilles heel the paper quantifies in Figure 7.
  for (TermId t : ctx_.corpus->doc(doc).terms()) {
    SVR_RETURN_NOT_OK(tree_->Delete(PostingKey(t, old_score, doc)));
    SVR_RETURN_NOT_OK(tree_->Put(PostingKey(t, new_score, doc), Slice()));
    BumpStat(&IndexStats::short_list_writes);  // counted as list maintenance work
  }
  return Status::OK();
}

Status ScoreIndex::InsertDocument(DocId doc, double score) {
  SVR_RETURN_NOT_OK(ctx_.score_table->Set(doc, score));
  for (TermId t : ctx_.corpus->doc(doc).terms()) {
    SVR_RETURN_NOT_OK(tree_->Put(PostingKey(t, score, doc), Slice()));
  }
  return Status::OK();
}

Status ScoreIndex::DeleteDocument(DocId doc) {
  double score = 0.0;
  Status get = ctx_.score_table->Get(doc, &score);
  if (!get.ok() && !get.IsNotFound()) return get;
  for (TermId t : ctx_.corpus->doc(doc).terms()) {
    SVR_RETURN_NOT_OK(tree_->Delete(PostingKey(t, score, doc)));
  }
  has_deletions_ = true;
  return ctx_.score_table->MarkDeleted(doc);
}

Status ScoreIndex::UpdateContent(DocId doc, const text::Document& old_doc) {
  // Postings of never-scored docs are keyed at 0.0 (as Build wrote them).
  double score = 0.0;
  Status get = ctx_.score_table->Get(doc, &score);
  if (!get.ok() && !get.IsNotFound()) return get;
  const text::Document& new_doc = ctx_.corpus->doc(doc);
  for (TermId t : new_doc.terms()) {
    if (!old_doc.Contains(t)) {
      SVR_RETURN_NOT_OK(tree_->Put(PostingKey(t, score, doc), Slice()));
    }
  }
  for (TermId t : old_doc.terms()) {
    if (!new_doc.Contains(t)) {
      SVR_RETURN_NOT_OK(tree_->Delete(PostingKey(t, score, doc)));
    }
  }
  return Status::OK();
}

IndexSnapshot ScoreIndex::SealSnapshot() {
  IndexSnapshot s;
  s.score_postings = tree_->Seal();
  s.score = ctx_.score_table->Seal();
  s.corpus = ctx_.corpus->Seal();
  s.has_deletions = has_deletions_;
  return s;
}

Status ScoreIndex::TopK(const Query& query, size_t k,
                        std::vector<SearchResult>* results) {
  return TopKAt(SealSnapshot(), query, k, results);
}

Status ScoreIndex::TopKAt(const IndexSnapshot& snap, const Query& query,
                          size_t k, std::vector<SearchResult>* results,
                          QueryStats* query_stats) {
  // Queries may run concurrently against sealed snapshots: accumulate
  // counters locally and fold them once at the end.
  QueryStats qs;
  results->clear();
  if (query.terms.empty() || k == 0) {
    FoldQueryStats(qs);
    if (query_stats != nullptr) *query_stats = qs;
    return Status::OK();
  }
  const relational::ScoreTable::View scores(ctx_.score_table, snap.score);
  const bool has_deletions = snap.has_deletions;

  std::vector<TermCursor> cursors;
  cursors.reserve(query.terms.size());
  for (TermId t : query.terms) {
    cursors.emplace_back(tree_.get(), snap.score_postings, t,
                         &qs.postings_scanned);
  }

  ResultHeap heap(k);
  auto offer = [&](DocId doc, double score) -> Status {
    // Probe only when deletions exist — or at score 0.0, the one place
    // a never-scored doc (indexed at 0.0, no Score-table entry; the
    // oracle skips it) can sit.
    if (has_deletions || score == 0.0) {
      double s;
      bool deleted = false;
      Status st = scores.GetWithDeleted(doc, &s, &deleted);
      if (!st.ok() && !st.IsNotFound()) return st;
      ++qs.score_lookups;
      if (st.IsNotFound() || deleted) return Status::OK();
    }
    ++qs.candidates_considered;
    heap.Offer(doc, score);
    return Status::OK();
  };

  // Postings are in exact (score desc, doc asc) order in every cursor, so
  // candidates are generated best-first and the scan can stop the moment
  // the next posting cannot beat the k-th result.
  auto before = [](const TermCursor& a, const TermCursor& b) {
    if (a.score() != b.score()) return a.score() > b.score();
    return a.doc() < b.doc();
  };

  if (query.conjunctive) {
    while (true) {
      // Find the cursor that is furthest along (smallest in scan order).
      const TermCursor* furthest = nullptr;
      bool any_invalid = false;
      for (auto& c : cursors) {
        if (!c.Valid()) {
          any_invalid = true;
          break;
        }
        if (furthest == nullptr || before(*furthest, c)) furthest = &c;
      }
      if (any_invalid) break;

      if (heap.full() && furthest->score() <= heap.MinScore()) break;

      bool aligned = true;
      const double target_score = furthest->score();
      const DocId target_doc = furthest->doc();
      for (auto& c : cursors) {
        while (c.Valid() && before(c, *furthest)) c.Next();
        if (!c.Valid() || c.score() != target_score ||
            c.doc() != target_doc) {
          aligned = false;
        }
      }
      if (!aligned) continue;

      SVR_RETURN_NOT_OK(offer(target_doc, target_score));
      for (auto& c : cursors) c.Next();
    }
  } else {
    while (true) {
      // Smallest posting in scan order across cursors.
      const TermCursor* first = nullptr;
      for (auto& c : cursors) {
        if (c.Valid() && (first == nullptr || before(c, *first))) {
          first = &c;
        }
      }
      if (first == nullptr) break;
      const double score = first->score();
      const DocId doc = first->doc();
      if (heap.full() && score <= heap.MinScore()) break;
      for (auto& c : cursors) {
        if (c.Valid() && c.score() == score && c.doc() == doc) c.Next();
      }
      SVR_RETURN_NOT_OK(offer(doc, score));
    }
  }

  *results = heap.TakeSorted();
  FoldQueryStats(qs);
  if (query_stats != nullptr) *query_stats = qs;
  return Status::OK();
}

}  // namespace svr::index
