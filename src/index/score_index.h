#ifndef SVR_INDEX_SCORE_INDEX_H_
#define SVR_INDEX_SCORE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/text_index.h"
#include "storage/bptree.h"

namespace svr::index {

/// \brief The Score method (§4.2.2): one inverted list per term ordered
/// by decreasing score, each posting carrying (score, doc).
///
/// Queries terminate as soon as the top-k is complete (the lists are in
/// exact score order), but every score update must relocate one posting
/// in the list of *every* distinct term of the document — the paper
/// measures ~17 s per update at scale. Because the list is mutated it is
/// a clustered B+-tree rather than an immutable blob (§5.2).
class ScoreIndex final : public TextIndex {
 public:
  explicit ScoreIndex(const IndexContext& ctx);

  std::string name() const override { return "Score"; }

  Status Build() override;
  Status OnScoreUpdate(DocId doc, double new_score) override;
  Status TopK(const Query& query, size_t k,
              std::vector<SearchResult>* results) override;
  Status TopKAt(const IndexSnapshot& snap, const Query& query, size_t k,
                std::vector<SearchResult>* results,
                QueryStats* query_stats = nullptr) override;
  IndexSnapshot SealSnapshot() override;

  Status InsertDocument(DocId doc, double score) override;
  Status DeleteDocument(DocId doc) override;
  Status UpdateContent(DocId doc, const text::Document& old_doc) override;

  uint64_t LongListBytes() const override { return tree_->SizeBytes(); }

 private:
  class TermCursor;

  std::string PostingKey(TermId term, double score, DocId doc) const;

  IndexContext ctx_;
  std::unique_ptr<storage::BPlusTree> tree_;
  bool has_deletions_ = false;
};

}  // namespace svr::index

#endif  // SVR_INDEX_SCORE_INDEX_H_
