#include "index/list_state.h"

#include <vector>

#include "common/coding.h"
#include "common/key_codec.h"

namespace svr::index {

namespace {

std::string DocKey(DocId doc) {
  std::string k;
  PutKeyU32(&k, doc);
  return k;
}

Status ParseEntry(const std::string& v, ListStateTable::Entry* entry) {
  if (v.size() != 9) return Status::Corruption("bad list-state entry");
  entry->list_value = DecodeFixedDouble(v.data());
  entry->in_short_list = v[8] != 0;
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ListStateTable>> ListStateTable::Create(
    storage::BufferPool* pool, storage::PageRetirer retire) {
  auto tree = retire != nullptr
                  ? storage::BPlusTree::CreateCow(pool, std::move(retire))
                  : storage::BPlusTree::Create(pool);
  SVR_RETURN_NOT_OK(tree.status());
  return std::unique_ptr<ListStateTable>(
      new ListStateTable(std::move(tree).value()));
}

Status ListStateTable::Put(DocId doc, const Entry& entry) {
  std::string v;
  PutFixedDouble(&v, entry.list_value);
  v.push_back(entry.in_short_list ? 1 : 0);
  return tree_->Put(DocKey(doc), v);
}

Status ListStateTable::Get(DocId doc, Entry* entry) const {
  return GetAt(tree_->LiveSnapshot(), doc, entry);
}

Status ListStateTable::GetAt(const storage::TreeSnapshot& snap, DocId doc,
                             Entry* entry) const {
  std::string v;
  SVR_RETURN_NOT_OK(tree_->GetAt(snap, DocKey(doc), &v));
  return ParseEntry(v, entry);
}

Status ListStateTable::Remove(DocId doc) {
  return tree_->Delete(DocKey(doc));
}

Status ListStateTable::Clear() {
  // Collect keys first: deleting while iterating would invalidate the
  // cursor's leaf position.
  std::vector<std::string> keys;
  for (auto it = tree_->Begin(); it->Valid(); it->Next()) {
    keys.push_back(it->key().ToString());
  }
  for (const auto& k : keys) {
    SVR_RETURN_NOT_OK(tree_->Delete(k));
  }
  return Status::OK();
}

}  // namespace svr::index
