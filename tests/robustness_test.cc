#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/oracle.h"
#include "index/chunk_index.h"
#include "index/score_threshold_index.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "tests/index_test_util.h"

namespace svr::test {
namespace {

// --- the paper's correctness lemmas as runtime invariants ----------------

class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.num_docs = 300;
    params_.terms_per_doc = 25;
    params_.vocab_size = 100;
    params_.seed = 21;
    scores_ = MakeScores(params_.num_docs, 50000.0, 0.75, 31);
  }

  // Churn: bursty bidirectional score traffic.
  template <typename Fn>
  void Churn(IndexWorld* w, Fn check) {
    Random rng(5150);
    for (int i = 0; i < 1500; ++i) {
      DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
      double s;
      ASSERT_TRUE(w->score_table->Get(d, &s).ok());
      double delta = rng.UniformDouble(0, 3000) * (rng.OneIn(2) ? 1 : -1);
      if (rng.OneIn(50)) delta *= 100;  // occasional flash crowd
      ASSERT_TRUE(
          w->idx->OnScoreUpdate(d, std::max(0.0, s + delta)).ok());
      if (i % 250 == 249) check();
    }
  }

  text::CorpusParams params_;
  std::vector<double> scores_;
};

// Lemma 1.2 (Appendix B): for every document,
//   currentScore(d) <= thresholdValueOf(listScore(d)).
// This is exactly what makes Algorithm 2's bounded extra scan correct.
TEST_F(InvariantTest, ScoreThresholdLemma12HoldsUnderChurn) {
  auto w = IndexWorld::Make(index::Method::kScoreThreshold, params_,
                            scores_);
  ASSERT_NE(w, nullptr);
  auto* st = static_cast<index::ScoreThresholdIndex*>(w->idx.get());
  Churn(w.get(), [&] {
    for (DocId d = 0; d < params_.num_docs; ++d) {
      double curr, l_score;
      bool in_short;
      ASSERT_TRUE(w->score_table->Get(d, &curr).ok());
      ASSERT_TRUE(st->ListScoreOf(d, &l_score, &in_short).ok());
      EXPECT_LE(curr, st->thresholdValueOf(l_score) + 1e-9) << "doc " << d;
    }
  });
}

// Chunk analogue: ChunkOf(currentScore(d)) <= listChunk(d) + 1 — a doc is
// never more than one chunk "ahead" of its postings.
TEST_F(InvariantTest, ChunkLemmaHoldsUnderChurn) {
  auto w = IndexWorld::Make(index::Method::kChunk, params_, scores_);
  ASSERT_NE(w, nullptr);
  auto* ci = static_cast<index::ChunkIndex*>(w->idx.get());
  Churn(w.get(), [&] {
    for (DocId d = 0; d < params_.num_docs; ++d) {
      double curr;
      ChunkId l_chunk;
      bool in_short;
      ASSERT_TRUE(w->score_table->Get(d, &curr).ok());
      ASSERT_TRUE(ci->ListChunkOf(d, &l_chunk, &in_short).ok());
      EXPECT_LE(ci->chunker().ChunkOf(curr),
                index::Chunker::ThresholdValueOf(l_chunk))
          << "doc " << d << " curr " << curr;
    }
  });
}

// Negative updates must never touch the short lists (§4.3.1: "negative
// score updates would not require updates to the short list").
TEST_F(InvariantTest, DecreasesNeverWriteShortLists) {
  auto w =
      IndexWorld::Make(index::Method::kScoreThreshold, params_, scores_);
  ASSERT_NE(w, nullptr);
  w->idx->ResetStats();
  Random rng(2);
  for (int i = 0; i < 500; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
    double s;
    ASSERT_TRUE(w->score_table->Get(d, &s).ok());
    ASSERT_TRUE(w->idx->OnScoreUpdate(d, s * 0.9).ok());
  }
  EXPECT_EQ(w->idx->stats().short_list_writes, 0u);
}

// Small increases below the threshold leave the short lists alone too —
// the whole point of the method.
TEST_F(InvariantTest, SubThresholdIncreasesAreFree) {
  index::IndexOptions opt = IndexWorld::DefaultOptions();
  opt.score_threshold.threshold_ratio = 100.0;  // generous threshold
  auto w = IndexWorld::Make(index::Method::kScoreThreshold, params_,
                            scores_, opt);
  ASSERT_NE(w, nullptr);
  w->idx->ResetStats();
  Random rng(3);
  for (int i = 0; i < 500; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
    double s;
    ASSERT_TRUE(w->score_table->Get(d, &s).ok());
    ASSERT_TRUE(w->idx->OnScoreUpdate(d, s * 1.01 + 0.001).ok());
  }
  EXPECT_EQ(w->idx->stats().short_list_writes, 0u);
}

// --- oracle sanity ---------------------------------------------------------

TEST(OracleTest, HandComputedRanking) {
  storage::InMemoryPageStore store(1024);
  storage::BufferPool pool(&store, 256);
  auto scores = relational::ScoreTable::Create(&pool).value();
  text::Corpus corpus(10);
  corpus.Add(text::Document::FromTokens({1, 2}));     // doc 0
  corpus.Add(text::Document::FromTokens({1, 2, 3}));  // doc 1
  corpus.Add(text::Document::FromTokens({1}));        // doc 2
  ASSERT_TRUE(scores->Set(0, 10).ok());
  ASSERT_TRUE(scores->Set(1, 30).ok());
  ASSERT_TRUE(scores->Set(2, 20).ok());

  core::BruteForceOracle oracle(&corpus, scores.get());
  index::Query q;
  q.terms = {1, 2};
  q.conjunctive = true;
  std::vector<index::SearchResult> out;
  ASSERT_TRUE(oracle.TopK(q, 10, false, &out).ok());
  ASSERT_EQ(out.size(), 2u);  // doc 2 lacks term 2
  EXPECT_EQ(out[0].doc, 1u);
  EXPECT_EQ(out[1].doc, 0u);

  q.conjunctive = false;
  ASSERT_TRUE(oracle.TopK(q, 10, false, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].doc, 1u);
  EXPECT_EQ(out[1].doc, 2u);
  EXPECT_EQ(out[2].doc, 0u);
}

TEST(OracleTest, SkipsDeletedAndUnscored) {
  storage::InMemoryPageStore store(1024);
  storage::BufferPool pool(&store, 256);
  auto scores = relational::ScoreTable::Create(&pool).value();
  text::Corpus corpus(10);
  corpus.Add(text::Document::FromTokens({1}));
  corpus.Add(text::Document::FromTokens({1}));
  corpus.Add(text::Document::FromTokens({1}));  // never scored
  ASSERT_TRUE(scores->Set(0, 10).ok());
  ASSERT_TRUE(scores->Set(1, 99).ok());
  ASSERT_TRUE(scores->MarkDeleted(1).ok());

  core::BruteForceOracle oracle(&corpus, scores.get());
  index::Query q;
  q.terms = {1};
  std::vector<index::SearchResult> out;
  ASSERT_TRUE(oracle.TopK(q, 10, false, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 0u);
}

// --- failure injection ------------------------------------------------------

// A page store that starts failing reads after a fuse burns out.
class FlakyPageStore final : public storage::PageStore {
 public:
  explicit FlakyPageStore(uint32_t page_size) : inner_(page_size) {}

  void BlowFuseAfter(int reads) { fuse_ = reads; }

  Status Read(storage::PageId id, char* buf) override {
    if (fuse_ >= 0 && reads_done_++ >= fuse_) {
      return Status::IOError("injected read failure");
    }
    return inner_.Read(id, buf);
  }
  Status Write(storage::PageId id, const char* buf) override {
    return inner_.Write(id, buf);
  }
  Result<storage::PageId> Allocate() override { return inner_.Allocate(); }
  Result<storage::PageId> AllocateRun(uint32_t n) override {
    return inner_.AllocateRun(n);
  }
  Status Free(storage::PageId id) override { return inner_.Free(id); }
  uint32_t page_size() const override { return inner_.page_size(); }
  uint64_t live_pages() const override { return inner_.live_pages(); }

 private:
  storage::InMemoryPageStore inner_;
  int fuse_ = -1;
  int reads_done_ = 0;
};

TEST(FailureInjectionTest, BPlusTreeSurfacesIOErrors) {
  FlakyPageStore store(512);
  storage::BufferPool pool(&store, 2);  // tiny: forces re-reads
  auto tree = storage::BPlusTree::Create(&pool).value();
  for (int i = 0; i < 500; ++i) {
    std::string k = "key" + std::to_string(i);
    ASSERT_TRUE(tree->Put(k, "v").ok());
  }
  ASSERT_TRUE(pool.EvictAll().ok());
  store.BlowFuseAfter(0);
  std::string v;
  Status st = tree->Get("key123", &v);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // And recovers once reads work again.
  store.BlowFuseAfter(1 << 30);
  EXPECT_TRUE(tree->Get("key123", &v).ok());
}

TEST(FailureInjectionTest, BlobReaderSurfacesIOErrors) {
  FlakyPageStore store(256);
  storage::BufferPool pool(&store, 4);
  storage::BlobStore blobs(&pool);
  auto ref = blobs.Write(std::string(1000, 'x')).value();
  ASSERT_TRUE(pool.EvictAll().ok());
  store.BlowFuseAfter(1);  // first page readable, second fails
  auto reader = blobs.NewReader(ref);
  char buf[600];
  Status st = reader.ReadBytes(buf, 600);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

// Queries over an index whose long-list pool hits I/O errors must fail
// cleanly (Status, not crash or wrong answer).
TEST(FailureInjectionTest, QueriesFailCleanlyOnListIOErrors) {
  text::CorpusParams params;
  params.num_docs = 200;
  params.terms_per_doc = 20;
  params.vocab_size = 60;
  params.seed = 9;
  auto scores = MakeScores(params.num_docs, 1000.0, 0.75, 4);

  // Hand-build a world around a flaky list store. The store is declared
  // before the world so it outlives the pools that reference it.
  auto flaky = std::make_unique<FlakyPageStore>(4096);
  FlakyPageStore* flaky_raw = flaky.get();
  auto w = std::make_unique<IndexWorld>();
  w->table_store = std::make_unique<storage::InMemoryPageStore>(4096);
  w->table_pool =
      std::make_unique<storage::BufferPool>(w->table_store.get(), 4096);
  w->list_pool = std::make_unique<storage::BufferPool>(flaky.get(), 4096);
  w->score_table =
      relational::ScoreTable::Create(w->table_pool.get()).value();
  w->corpus = text::GenerateCorpus(params);
  for (DocId d = 0; d < w->corpus.num_docs(); ++d) {
    ASSERT_TRUE(w->score_table->Set(d, scores[d]).ok());
  }
  index::IndexContext ctx;
  ctx.table_pool = w->table_pool.get();
  ctx.list_pool = w->list_pool.get();
  ctx.score_table = w->score_table.get();
  ctx.corpus = &w->corpus;
  auto idx = index::CreateIndex(index::Method::kChunk, ctx,
                                IndexWorld::DefaultOptions())
                 .value();
  ASSERT_TRUE(idx->Build().ok());
  ASSERT_TRUE(w->list_pool->EvictAll().ok());

  flaky_raw->BlowFuseAfter(0);
  index::Query q;
  q.terms = {w->corpus.TermsByFrequency()[0]};
  std::vector<index::SearchResult> out;
  Status st = idx->TopK(q, 5, &out);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

}  // namespace
}  // namespace svr::test
