// Property-style sweeps: every point in the tuning-knob space must stay
// *exactly* correct under update churn — the knobs trade performance,
// never correctness (Theorems 1 and 2 of the paper). These sweeps
// exercise the stop rules at their extremes (eager movement at ratio~1,
// ID-like degeneration at huge ratios, single-chunk collections,
// one-entry fancy lists).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/index_factory.h"
#include "tests/index_test_util.h"

namespace svr::test {
namespace {

using index::Method;
using index::Query;
using index::SearchResult;

text::CorpusParams SweepCorpus() {
  text::CorpusParams p;
  p.num_docs = 350;
  p.terms_per_doc = 35;
  p.vocab_size = 110;
  p.term_zipf = 0.7;
  p.seed = 13;
  return p;
}

// Churn + full differential validation against the oracle.
void ChurnAndValidate(IndexWorld* w, bool with_ts, uint64_t seed) {
  Random rng(seed);
  const size_t n = w->corpus.num_docs();
  auto validate = [&](const std::string& label) {
    auto by_freq = w->corpus.TermsByFrequency();
    for (bool conj : {true, false}) {
      for (size_t k : {1u, 7u, 40u}) {
        Query q;
        q.terms = {by_freq[0], by_freq[4]};
        q.conjunctive = conj;
        std::vector<SearchResult> got, want;
        ASSERT_TRUE(w->idx->TopK(q, k, &got).ok()) << label;
        ASSERT_TRUE(w->oracle->TopK(q, k, with_ts, &want).ok()) << label;
        ASSERT_EQ(got.size(), want.size()) << label << " k=" << k;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].doc, want[i].doc)
              << label << " k=" << k << " rank " << i
              << (conj ? " conj" : " disj");
        }
      }
    }
  };
  for (int i = 0; i < 600; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(n));
    double s;
    ASSERT_TRUE(w->score_table->Get(d, &s).ok());
    double delta = rng.UniformDouble(0, 4000) * (rng.OneIn(2) ? 1 : -1);
    if (rng.OneIn(40)) delta *= 200;  // flash crowds cross many chunks
    ASSERT_TRUE(w->idx->OnScoreUpdate(d, std::max(0.0, s + delta)).ok());
    if (i % 150 == 149) validate("step" + std::to_string(i));
  }
  validate("final");
}

// --- chunk ratio sweep ---------------------------------------------------

class ChunkRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChunkRatioSweep, ExactAtEveryRatio) {
  index::IndexOptions opt = IndexWorld::DefaultOptions();
  opt.chunk.chunking.chunk_ratio = GetParam();
  opt.chunk.chunking.min_chunk_size = 3;
  auto scores = MakeScores(350, 80000.0, 0.75, 41);
  auto w = IndexWorld::Make(Method::kChunk, SweepCorpus(), scores, opt);
  ASSERT_NE(w, nullptr);
  ChurnAndValidate(w.get(), false, 0xC0FFEE);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ChunkRatioSweep,
                         ::testing::Values(1.2, 1.6, 2.0, 4.0, 8.0, 32.0,
                                           1024.0),
                         [](const ::testing::TestParamInfo<double>& i) {
                           std::string s = std::to_string(i.param);
                           for (auto& c : s) {
                             if (c == '.') c = '_';
                           }
                           return "r" + s.substr(0, s.find('_') + 2);
                         });

// --- chunk strategy sweep --------------------------------------------------

class ChunkStrategySweep
    : public ::testing::TestWithParam<index::ChunkStrategy> {};

TEST_P(ChunkStrategySweep, ExactUnderEveryBoundaryScheme) {
  index::IndexOptions opt = IndexWorld::DefaultOptions();
  opt.chunk.chunking.strategy = GetParam();
  opt.chunk.chunking.target_num_chunks = 6;
  opt.chunk.chunking.min_chunk_size = 2;
  auto scores = MakeScores(350, 80000.0, 0.75, 42);
  auto w = IndexWorld::Make(Method::kChunk, SweepCorpus(), scores, opt);
  ASSERT_NE(w, nullptr);
  ChurnAndValidate(w.get(), false, 0xBEEF);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ChunkStrategySweep,
    ::testing::Values(index::ChunkStrategy::kRatio,
                      index::ChunkStrategy::kEqualCount,
                      index::ChunkStrategy::kEqualWidth),
    [](const ::testing::TestParamInfo<index::ChunkStrategy>& i) {
      switch (i.param) {
        case index::ChunkStrategy::kRatio:
          return std::string("Ratio");
        case index::ChunkStrategy::kEqualCount:
          return std::string("EqualCount");
        case index::ChunkStrategy::kEqualWidth:
          return std::string("EqualWidth");
      }
      return std::string("?");
    });

// --- threshold ratio sweep ---------------------------------------------

class ThresholdRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdRatioSweep, ExactAtEveryThreshold) {
  index::IndexOptions opt = IndexWorld::DefaultOptions();
  opt.score_threshold.threshold_ratio = GetParam();
  auto scores = MakeScores(350, 80000.0, 0.75, 43);
  auto w = IndexWorld::Make(Method::kScoreThreshold, SweepCorpus(), scores,
                            opt);
  ASSERT_NE(w, nullptr);
  ChurnAndValidate(w.get(), false, 0xF00D);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdRatioSweep,
                         ::testing::Values(1.0, 1.05, 2.0, 10.0, 1e6),
                         [](const ::testing::TestParamInfo<double>& i) {
                           return "t" + std::to_string(i.index);
                         });

// --- fancy list size sweep (Algorithm 3 bound tightness) ----------------

class FancySizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FancySizeSweep, ExactAtEveryFancySize) {
  index::IndexOptions opt = IndexWorld::DefaultOptions();
  opt.term_scores.fancy_list_size = GetParam();
  opt.chunk.term_scores.fancy_list_size = GetParam();
  auto scores = MakeScores(350, 80000.0, 0.75, 44);
  auto w = IndexWorld::Make(Method::kChunkTermScore, SweepCorpus(), scores,
                            opt);
  ASSERT_NE(w, nullptr);
  ChurnAndValidate(w.get(), /*with_ts=*/true, 0xFA2C);
}

INSTANTIATE_TEST_SUITE_P(FancySizes, FancySizeSweep,
                         ::testing::Values(1u, 2u, 8u, 64u, 100000u),
                         [](const ::testing::TestParamInfo<uint32_t>& i) {
                           return "f" + std::to_string(i.param);
                         });

// --- query shape sweep ------------------------------------------------------

struct QueryShape {
  uint32_t num_terms;
  bool conjunctive;
};

class QueryShapeSweep : public ::testing::TestWithParam<QueryShape> {};

TEST_P(QueryShapeSweep, MultiTermQueriesExactForChunkFamily) {
  auto scores = MakeScores(350, 80000.0, 0.75, 45);
  for (Method m : {Method::kChunk, Method::kChunkTermScore}) {
    auto w = IndexWorld::Make(m, SweepCorpus(), scores);
    ASSERT_NE(w, nullptr);
    Random rng(31337);
    for (int i = 0; i < 200; ++i) {
      DocId d = static_cast<DocId>(rng.Uniform(350));
      double s;
      ASSERT_TRUE(w->score_table->Get(d, &s).ok());
      ASSERT_TRUE(
          w->idx
              ->OnScoreUpdate(d, std::max(0.0, s + rng.UniformDouble(
                                                      -2000, 20000)))
              .ok());
    }
    auto by_freq = w->corpus.TermsByFrequency();
    const bool ts = IsTermScoreMethod(m);
    for (int rep = 0; rep < 10; ++rep) {
      Query q;
      q.conjunctive = GetParam().conjunctive;
      while (q.terms.size() < GetParam().num_terms) {
        TermId t = by_freq[rng.Uniform(by_freq.size() / 2)];
        if (std::find(q.terms.begin(), q.terms.end(), t) == q.terms.end()) {
          q.terms.push_back(t);
        }
      }
      std::vector<SearchResult> got, want;
      ASSERT_TRUE(w->idx->TopK(q, 15, &got).ok());
      ASSERT_TRUE(w->oracle->TopK(q, 15, ts, &want).ok());
      ASSERT_EQ(got.size(), want.size());
      for (size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].doc, want[r].doc)
            << index::MethodName(m) << " terms="
            << GetParam().num_terms << " rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QueryShapeSweep,
    ::testing::Values(QueryShape{1, true}, QueryShape{2, true},
                      QueryShape{3, true}, QueryShape{5, true},
                      QueryShape{1, false}, QueryShape{3, false},
                      QueryShape{5, false}),
    [](const ::testing::TestParamInfo<QueryShape>& i) {
      return std::string(i.param.conjunctive ? "conj" : "disj") +
             std::to_string(i.param.num_terms);
    });

}  // namespace
}  // namespace svr::test
