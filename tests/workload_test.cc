#include <gtest/gtest.h>

#include <set>

#include "workload/experiment.h"
#include "workload/params.h"
#include "workload/query_workload.h"
#include "workload/score_generator.h"
#include "workload/update_workload.h"

namespace svr::workload {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig c;
  c.corpus.num_docs = 300;
  c.corpus.terms_per_doc = 30;
  c.corpus.vocab_size = 150;
  c.corpus.term_zipf = 0.8;
  c.corpus.seed = 11;
  c.num_updates = 500;
  c.mean_update_step = 500.0;
  c.num_queries = 10;
  c.top_k = 10;
  c.seed = 77;
  return c;
}

index::IndexOptions SmallOptions() {
  index::IndexOptions o;
  o.chunk.chunking.chunk_ratio = 2.0;
  o.chunk.chunking.min_chunk_size = 5;
  o.score_threshold.threshold_ratio = 2.0;
  o.term_scores.fancy_list_size = 8;
  o.chunk.term_scores.fancy_list_size = 8;
  return o;
}

TEST(ScoreGeneratorTest, RangeAndDeterminism) {
  auto a = GenerateScores(1000, 100000.0, 0.75, 5);
  auto b = GenerateScores(1000, 100000.0, 0.75, 5);
  EXPECT_EQ(a, b);
  double max_seen = 0;
  for (double s : a) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 100000.0);
    max_seen = std::max(max_seen, s);
  }
  EXPECT_EQ(max_seen, 100000.0);  // rank-1 doc hits the max
}

TEST(ScoreGeneratorTest, ZipfSkew) {
  auto s = GenerateScores(10000, 100000.0, 0.75, 5);
  // Most docs are far below the max under Zipf 0.75.
  size_t below_tenth = 0;
  for (double v : s) {
    if (v < 10000.0) ++below_tenth;
  }
  EXPECT_GT(below_tenth, 8000u);
}

TEST(UpdateWorkloadTest, DeltasWithinTwiceMean) {
  ExperimentConfig c = SmallConfig();
  c.mean_update_step = 100.0;
  auto scores = GenerateScores(c.corpus.num_docs, c.max_score,
                               c.score_zipf, c.seed);
  UpdateWorkload w(c, scores);
  for (int i = 0; i < 2000; ++i) {
    ScoreUpdate u = w.Next();
    EXPECT_LT(u.doc, c.corpus.num_docs);
    EXPECT_LE(std::abs(u.delta), 200.0);
  }
}

TEST(UpdateWorkloadTest, FocusSetOnlyIncreasesByDefault) {
  ExperimentConfig c = SmallConfig();
  c.focus_set_pct = 5.0;
  c.focus_update_pct = 50.0;
  auto scores = GenerateScores(c.corpus.num_docs, c.max_score,
                               c.score_zipf, c.seed);
  UpdateWorkload w(c, scores);
  EXPECT_EQ(w.focus_set().size(), 15u);  // 5% of 300
  int focus_hits = 0;
  for (int i = 0; i < 3000; ++i) {
    ScoreUpdate u = w.Next();
    if (u.is_focus) {
      ++focus_hits;
      EXPECT_GE(u.delta, 0.0);
    }
  }
  // Roughly half the updates should hit the focus set.
  EXPECT_GT(focus_hits, 1100);
  EXPECT_LT(focus_hits, 1900);
}

TEST(UpdateWorkloadTest, PopularDocsUpdatedMoreOften) {
  ExperimentConfig c = SmallConfig();
  c.focus_set_pct = 0.0;
  c.update_zipf = 1.0;
  auto scores = GenerateScores(c.corpus.num_docs, c.max_score,
                               c.score_zipf, c.seed);
  UpdateWorkload w(c, scores);
  // Identify the top-scored doc.
  DocId top = 0;
  for (DocId d = 1; d < scores.size(); ++d) {
    if (scores[d] > scores[top]) top = d;
  }
  int top_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    if (w.Next().doc == top) ++top_hits;
  }
  EXPECT_GT(top_hits, 100);  // far above the uniform 5000/300 ≈ 17
}

TEST(QueryWorkloadTest, PoolScalingAndDistinctTerms) {
  ExperimentConfig c = SmallConfig();
  c.corpus.vocab_size = 2000;
  c.query_terms = 3;
  text::Corpus corpus = text::GenerateCorpus(c.corpus);
  QueryWorkload w(c, corpus);
  // 350/200000 * 2000 = 3.5 -> clamped to query_terms + 1.
  EXPECT_EQ(w.PoolSize(QueryClass::kUnselective), 4u);
  EXPECT_EQ(w.PoolSize(QueryClass::kMedium), 16u);
  EXPECT_EQ(w.PoolSize(QueryClass::kSelective), 150u);
  for (int i = 0; i < 50; ++i) {
    index::Query q = w.Next(QueryClass::kSelective);
    EXPECT_EQ(q.terms.size(), 3u);
    std::set<TermId> distinct(q.terms.begin(), q.terms.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

class ExperimentTest : public ::testing::TestWithParam<index::Method> {};

TEST_P(ExperimentTest, EndToEndValidatedAgainstOracle) {
  auto exp = Experiment::Setup(GetParam(), SmallConfig(), SmallOptions());
  ASSERT_TRUE(exp.ok());
  Experiment& e = *exp.value();

  auto upd = e.ApplyUpdates(300);
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().count, 300u);

  for (QueryClass cls : {QueryClass::kUnselective, QueryClass::kMedium,
                         QueryClass::kSelective}) {
    auto q = e.RunQueries(cls, /*validate=*/true);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q.value().count, 10u);
  }
}

TEST_P(ExperimentTest, InsertionsThenQueriesValidate) {
  if (GetParam() == index::Method::kChunkTermScore) {
    // Fancy lists are rebuilt offline; a freshly inserted doc with a
    // term score above a fancy-list minimum would weaken the Algorithm-3
    // bound until the next merge (DESIGN.md §6).
    GTEST_SKIP() << "requires offline merge before validated queries";
  }
  auto exp = Experiment::Setup(GetParam(), SmallConfig(), SmallOptions());
  ASSERT_TRUE(exp.ok());
  Experiment& e = *exp.value();
  auto ins = e.InsertDocuments(50);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto upd = e.ApplyUpdates(200);
  ASSERT_TRUE(upd.ok());
  auto q = e.RunQueries(QueryClass::kUnselective, /*validate=*/true);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ExperimentTest,
    ::testing::Values(index::Method::kId, index::Method::kScore,
                      index::Method::kScoreThreshold, index::Method::kChunk,
                      index::Method::kIdTermScore,
                      index::Method::kChunkTermScore),
    [](const ::testing::TestParamInfo<index::Method>& info) {
      std::string n = index::MethodName(info.param);
      std::string out;
      for (char c : n) {
        if (c != '-') out.push_back(c);
      }
      return out;
    });

}  // namespace
}  // namespace svr::workload
