// Sharded-engine tests (docs/sharding.md):
//  - DML routing units: the global-id -> (shard, local) map, its
//    inverse, hash stability, per-shard density, join-routed component
//    tables, and the pk restoration in search results.
//  - Scatter-gather correctness: for every index method, the sharded
//    top-k must equal the single-engine answer — same documents, same
//    scores, same order — across mixed insert/delete/content/score
//    churn, including deliberate score ties (broken by global id on
//    both sides).
//  - Concurrent churn: multi-writer sharded DML racing scatter-gather
//    queries, with every validated query checked per shard against the
//    brute-force oracle under ReadSnapshotAll.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/oracle.h"
#include "core/sharded_engine.h"
#include "core/svr_engine.h"
#include "workload/concurrent_driver.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SVR_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SVR_TSAN_BUILD 1
#endif
#ifndef SVR_TSAN_BUILD
#define SVR_TSAN_BUILD 0
#endif

namespace svr {
namespace {

constexpr bool kTsanBuild = SVR_TSAN_BUILD != 0;

using core::ShardedSvrEngine;
using core::ShardedSvrEngineOptions;
using core::SvrEngine;
using core::SvrEngineOptions;
using relational::AggFunction;
using relational::AggregateKind;
using relational::Schema;
using relational::Value;
using relational::ValueType;

std::string DocText(Random* rng, uint32_t vocab, uint32_t terms) {
  std::string text;
  for (uint32_t i = 0; i < terms; ++i) {
    if (!text.empty()) text.push_back(' ');
    text += "t" + std::to_string(rng->Uniform(vocab));
  }
  return text;
}

/// One scripted DML op, applied identically to both engines.
struct ChurnOp {
  enum Kind { kInsert, kDelete, kContent, kScore } kind;
  int64_t id;
  std::string text;
  double score;
};

/// Deterministic mixed-churn script over ids 0..initial_docs-1 plus the
/// documents it inserts itself.
std::vector<ChurnOp> MakeChurnScript(uint32_t initial_docs, uint32_t ops,
                                     uint32_t vocab, uint32_t terms,
                                     bool content_updates, uint64_t seed) {
  Random rng(seed);
  std::vector<ChurnOp> script;
  std::vector<bool> alive(initial_docs, true);
  int64_t next_id = initial_docs;
  auto pick_alive = [&]() -> int64_t {
    for (int tries = 0; tries < 64; ++tries) {
      const size_t d = rng.Uniform(alive.size());
      if (alive[d]) return static_cast<int64_t>(d);
    }
    return -1;
  };
  for (uint32_t i = 0; i < ops; ++i) {
    const double roll = rng.NextDouble() * 100.0;
    if (roll < 10.0) {
      script.push_back({ChurnOp::kInsert, next_id++,
                        DocText(&rng, vocab, terms),
                        1.0 + rng.NextDouble() * 1000.0});
      alive.push_back(true);
    } else if (roll < 14.0) {
      const int64_t id = pick_alive();
      if (id < 0) continue;
      script.push_back({ChurnOp::kDelete, id, "", 0.0});
      alive[id] = false;
    } else if (content_updates && roll < 24.0) {
      const int64_t id = pick_alive();
      if (id < 0) continue;
      script.push_back({ChurnOp::kContent, id,
                        DocText(&rng, vocab, terms), 0.0});
    } else {
      const int64_t id = pick_alive();
      if (id < 0) continue;
      script.push_back({ChurnOp::kScore, id, "",
                        1.0 + rng.NextDouble() * 1000.0});
    }
  }
  return script;
}

/// Both engines expose the same DML surface; the script runs verbatim
/// against either.
template <typename Engine>
void ApplyScript(Engine* engine, const std::vector<ChurnOp>& script) {
  for (const ChurnOp& op : script) {
    Status st;
    switch (op.kind) {
      case ChurnOp::kInsert:
        st = engine->Insert("docs", {Value::Int(op.id),
                                     Value::String(op.text)});
        ASSERT_TRUE(st.ok()) << st.ToString();
        st = engine->Insert("scores", {Value::Int(op.id),
                                       Value::Double(op.score)});
        break;
      case ChurnOp::kDelete:
        st = engine->Delete("docs", op.id);
        break;
      case ChurnOp::kContent:
        st = engine->Update("docs", {Value::Int(op.id),
                                     Value::String(op.text)});
        break;
      case ChurnOp::kScore:
        st = engine->Update("scores", {Value::Int(op.id),
                                       Value::Double(op.score)});
        break;
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

template <typename Engine>
void SetupDocsAndScores(Engine* engine, uint32_t initial_docs,
                        uint32_t vocab, uint32_t terms, uint64_t seed) {
  ASSERT_TRUE(engine
                  ->CreateTable("docs", Schema({{"id", ValueType::kInt64},
                                                {"text",
                                                 ValueType::kString}},
                                               0))
                  .ok());
  ASSERT_TRUE(engine
                  ->CreateTable("scores",
                                Schema({{"id", ValueType::kInt64},
                                        {"val", ValueType::kDouble}},
                                       0))
                  .ok());
  Random rng(seed);
  for (uint32_t d = 0; d < initial_docs; ++d) {
    ASSERT_TRUE(engine
                    ->Insert("docs", {Value::Int(d),
                                      Value::String(DocText(&rng, vocab,
                                                            terms))})
                    .ok());
    ASSERT_TRUE(engine
                    ->Insert("scores",
                             {Value::Int(d),
                              Value::Double(1.0 + rng.NextDouble() *
                                                      1000.0)})
                    .ok());
  }
  Status st = engine->CreateTextIndex(
      "docs", "text",
      {{"S1", "scores", "id", "val", AggregateKind::kValue}},
      AggFunction::WeightedSum({1.0}));
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// --- DML routing units ------------------------------------------------

class ShardedRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ShardedSvrEngineOptions opt;
    opt.num_shards = 3;
    opt.shard.method = index::Method::kChunk;
    opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
    auto e = ShardedSvrEngine::Open(opt);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    engine_ = std::move(e).value();
    SetupDocsAndScores(engine_.get(), kDocs, 60, 8, 7);
  }

  static constexpr uint32_t kDocs = 90;
  std::unique_ptr<ShardedSvrEngine> engine_;
};

TEST_F(ShardedRoutingTest, EveryKeyRoutesToItsHashShardDensely) {
  std::vector<uint32_t> per_shard(engine_->num_shards(), 0);
  for (int64_t gid = 0; gid < kDocs; ++gid) {
    auto route = engine_->Route(gid);
    ASSERT_TRUE(route.ok()) << route.status().ToString();
    const auto [shard, local] = route.value();
    EXPECT_EQ(shard, engine_->ShardOf(gid));
    // Locals are assigned densely in arrival order, so within a shard
    // the local sequence enumerates 0,1,2,... as gids arrive.
    EXPECT_EQ(local, per_shard[shard]);
    ++per_shard[shard];
    EXPECT_EQ(engine_->GlobalIdOf(shard, local), gid);
  }
  uint32_t total = 0;
  for (uint32_t s = 0; s < engine_->num_shards(); ++s) {
    EXPECT_EQ(engine_->shard(s)->corpus()->num_docs(), per_shard[s]);
    EXPECT_GT(per_shard[s], 0u) << "hash left shard " << s << " empty";
    total += per_shard[s];
  }
  EXPECT_EQ(total, kDocs);
  EXPECT_EQ(engine_->GetStats().num_ids, kDocs);
}

TEST_F(ShardedRoutingTest, UnknownKeysAreNotFound) {
  EXPECT_TRUE(engine_->Route(kDocs + 500).status().IsNotFound());
  EXPECT_EQ(engine_->GlobalIdOf(0, 100000), ShardedSvrEngine::kInvalidGlobalId);
  EXPECT_TRUE(engine_
                  ->Update("scores", {Value::Int(kDocs + 500),
                                      Value::Double(1.0)})
                  .IsNotFound());
  EXPECT_TRUE(engine_->Delete("docs", kDocs + 500).IsNotFound());
}

TEST_F(ShardedRoutingTest, SearchRestoresGlobalKeysInRowsAndPks) {
  // Give one known document a dominant score and find it by content.
  const int64_t winner = 41;
  ASSERT_TRUE(engine_
                  ->Update("docs", {Value::Int(winner),
                                    Value::String("zebra quark zebra")})
                  .ok());
  ASSERT_TRUE(engine_
                  ->Update("scores", {Value::Int(winner),
                                      Value::Double(999999.0)})
                  .ok());
  auto r = engine_->Search("zebra", 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().empty());
  const core::ScoredRow& hit = r.value().front();
  EXPECT_EQ(hit.pk, winner);
  // The row's pk column carries the *global* key, not the shard-local
  // document id it is stored under.
  EXPECT_EQ(hit.row[0].as_int(), winner);
  EXPECT_EQ(hit.row[1].as_string(), "zebra quark zebra");
}

TEST_F(ShardedRoutingTest, DeleteRoutesToOwningShardAndHidesTheDoc) {
  const int64_t victim = 17;
  ASSERT_TRUE(engine_
                  ->Update("docs", {Value::Int(victim),
                                    Value::String("xylophone only here")})
                  .ok());
  ASSERT_TRUE(engine_
                  ->Update("scores", {Value::Int(victim),
                                      Value::Double(500000.0)})
                  .ok());
  auto before = engine_->Search("xylophone", 3);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before.value().empty());
  EXPECT_EQ(before.value().front().pk, victim);

  ASSERT_TRUE(engine_->Delete("docs", victim).ok());
  auto after = engine_->Search("xylophone", 3);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().empty());
}

TEST_F(ShardedRoutingTest, FailedFreshInsertRollsItsAllocationBack) {
  // A malformed row for a never-seen key fails inside the shard after
  // the (shard, local) slot was allocated. The allocation must be
  // rolled back — otherwise the shard's dense-pk sequence is off by one
  // and every later fresh insert routed there fails forever.
  for (int64_t gid = kDocs; gid < kDocs + 6; ++gid) {
    Status st = engine_->Insert("docs", {Value::Int(gid)});  // arity 1/2
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(engine_->Route(gid).status().IsNotFound())
        << "failed insert left key " << gid << " mapped";
  }
  // Every shard still accepts fresh keys afterwards.
  for (int64_t gid = kDocs; gid < kDocs + 24; ++gid) {
    Status st = engine_->Insert(
        "docs", {Value::Int(gid), Value::String("recovered doc")});
    ASSERT_TRUE(st.ok()) << "key " << gid << ": " << st.ToString();
    ASSERT_TRUE(engine_
                    ->Insert("scores", {Value::Int(gid),
                                        Value::Double(50000.0 + gid)})
                    .ok());
  }
  auto r = engine_->Search("recovered", 30);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 24u);
}

TEST_F(ShardedRoutingTest, NonIntRoutingColumnIsRejectedCleanly) {
  EXPECT_TRUE(engine_
                  ->Insert("docs", {Value::String("oops"),
                                    Value::String("text")})
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_
                  ->Update("docs", {Value::String("oops"),
                                    Value::String("text")})
                  .IsInvalidArgument());
}

TEST(ShardedJoinRoutingTest, ComponentRowsFollowTheirDocument) {
  // A component table keyed by its own id but matching on the document
  // id ("Reviews(rID, mID, rating)"): rows must land on the document's
  // shard, with only the match column translated.
  ShardedSvrEngineOptions opt;
  opt.num_shards = 3;
  opt.shard.method = index::Method::kChunk;
  opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
  auto e = ShardedSvrEngine::Open(opt);
  ASSERT_TRUE(e.ok());
  auto engine = std::move(e).value();

  ASSERT_TRUE(engine
                  ->CreateTable("movies",
                                Schema({{"mID", ValueType::kInt64},
                                        {"desc", ValueType::kString}},
                                       0))
                  .ok());
  ASSERT_TRUE(engine
                  ->CreateTable("reviews",
                                Schema({{"rID", ValueType::kInt64},
                                        {"mID", ValueType::kInt64},
                                        {"rating", ValueType::kDouble}},
                                       0))
                  .ok());
  for (int64_t m = 0; m < 12; ++m) {
    ASSERT_TRUE(engine
                    ->Insert("movies",
                             {Value::Int(m),
                              Value::String("movie word" +
                                            std::to_string(m % 4))})
                    .ok());
  }
  // Declared before any review rows exist: "reviews" becomes
  // join-routed by its mID column.
  ASSERT_TRUE(engine
                  ->CreateTextIndex(
                      "movies", "desc",
                      {{"avg_rating", "reviews", "mID", "rating",
                        AggregateKind::kAvg}},
                      AggFunction::WeightedSum({10.0}))
                  .ok());

  // Reviews with globally unique rIDs for documents on (very likely)
  // different shards.
  ASSERT_TRUE(engine
                  ->Insert("reviews", {Value::Int(100), Value::Int(3),
                                       Value::Double(9.0)})
                  .ok());
  ASSERT_TRUE(engine
                  ->Insert("reviews", {Value::Int(101), Value::Int(7),
                                       Value::Double(2.0)})
                  .ok());
  ASSERT_TRUE(engine
                  ->Insert("reviews", {Value::Int(102), Value::Int(3),
                                       Value::Double(7.0)})
                  .ok());

  // movie 3 (avg 8.0) must outrank movie 7 (avg 2.0) on a shared term.
  auto r = engine->Search("movie", 12);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].pk, 3);
  EXPECT_DOUBLE_EQ(r.value()[0].score, 80.0);

  // Malformed rows fail cleanly on the join-routed path too: a non-int
  // pk must come back as InvalidArgument, not crash.
  EXPECT_TRUE(engine
                  ->Update("reviews", {Value::String("oops"), Value::Int(3),
                                       Value::Double(1.0)})
                  .IsInvalidArgument());

  // Join-routed rows reference documents, they never create them: a
  // review for a movie that does not exist is NotFound (allocating a
  // doc slot for it would wedge the shard's dense pk sequence).
  EXPECT_TRUE(engine
                  ->Insert("reviews", {Value::Int(900), Value::Int(5000),
                                       Value::Double(5.0)})
                  .IsNotFound());
  EXPECT_TRUE(engine->Route(5000).status().IsNotFound());

  // Duplicate review keys are rejected engine-wide even when the two
  // rows would land on different shards.
  Status dup = engine->Insert(
      "reviews", {Value::Int(100), Value::Int(7), Value::Double(3.0)});
  EXPECT_TRUE(dup.IsAlreadyExists()) << dup.ToString();

  // Document keys must fit the 32-bit doc-id space the gather carries.
  EXPECT_TRUE(engine
                  ->Insert("movies", {Value::Int(1LL << 33),
                                      Value::String("huge key")})
                  .IsInvalidArgument());

  // Updating a review routes back to the same shard; moving it to a
  // document of another shard is refused (cross-shard migration).
  ASSERT_TRUE(engine
                  ->Update("reviews", {Value::Int(101), Value::Int(7),
                                       Value::Double(9.5)})
                  .ok());
  int64_t other_shard_doc = -1;
  for (int64_t m = 0; m < 12; ++m) {
    if (engine->ShardOf(m) != engine->ShardOf(7)) {
      other_shard_doc = m;
      break;
    }
  }
  ASSERT_GE(other_shard_doc, 0);
  EXPECT_TRUE(engine
                  ->Update("reviews",
                           {Value::Int(101), Value::Int(other_shard_doc),
                            Value::Double(1.0)})
                  .IsNotSupported());

  // Deleting a review by its own key finds the recorded shard.
  ASSERT_TRUE(engine->Delete("reviews", 102).ok());
  r = engine->Search("movie", 12);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[0].score, 95.0);  // movie 7, rating 9.5
  EXPECT_EQ(r.value()[0].pk, 7);
}

TEST(ShardedJoinRoutingTest, FailedCreateTextIndexLeavesRoutingUntouched) {
  ShardedSvrEngineOptions opt;
  opt.num_shards = 2;
  opt.shard.method = index::Method::kChunk;
  opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
  auto e = ShardedSvrEngine::Open(opt);
  ASSERT_TRUE(e.ok());
  auto engine = std::move(e).value();
  ASSERT_TRUE(engine
                  ->CreateTable("movies",
                                Schema({{"mID", ValueType::kInt64},
                                        {"desc", ValueType::kString}},
                                       0))
                  .ok());
  ASSERT_TRUE(engine
                  ->CreateTable("reviews",
                                Schema({{"rID", ValueType::kInt64},
                                        {"mID", ValueType::kInt64},
                                        {"rating", ValueType::kDouble}},
                                       0))
                  .ok());
  ASSERT_TRUE(engine
                  ->Insert("movies", {Value::Int(0),
                                      Value::String("a movie")})
                  .ok());

  // A valid spec followed by an invalid one: the call must fail without
  // flipping "reviews" to join-routed or recording a scored table.
  Status st = engine->CreateTextIndex(
      "movies", "desc",
      {{"avg", "reviews", "mID", "rating", AggregateKind::kAvg},
       {"bad", "reviews", "no_such_column", "rating",
        AggregateKind::kAvg}},
      AggFunction::WeightedSum({1.0, 1.0}));
  ASSERT_FALSE(st.ok());

  // Still pk-routed: a review keyed by its own (fresh) rID inserts fine
  // — join routing would demand its mID referenced a known document.
  ASSERT_TRUE(engine
                  ->Insert("reviews", {Value::Int(1), Value::Int(0),
                                       Value::Double(5.0)})
                  .ok());

  // And a correct declaration afterwards still works end to end.
  ASSERT_TRUE(engine
                  ->CreateTextIndex("movies", "desc",
                                    {{"avg", "reviews", "mID", "rating",
                                      AggregateKind::kAvg}},
                                    AggFunction::WeightedSum({1.0}))
                  .ok());
  auto r = engine->Search("movie", 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].pk, 0);

  // Re-creating an index on an already-indexed engine is a clean error
  // (replacing the score view would dangle the database's observer
  // pointer), never a crash.
  EXPECT_TRUE(engine
                  ->CreateTextIndex("movies", "desc",
                                    {{"avg", "reviews", "mID", "rating",
                                      AggregateKind::kAvg}},
                                    AggFunction::WeightedSum({1.0}))
                  .IsAlreadyExists());
}

class EmptyShardTest : public ::testing::TestWithParam<index::Method> {};

TEST_P(EmptyShardTest, EnginesWithEmptyShardsIndexAndGrow) {
  // With more shards than documents some shards are empty at
  // CreateTextIndex time; they must still build (degenerate chunker)
  // and accept documents afterwards.
  ShardedSvrEngineOptions opt;
  opt.num_shards = 4;
  opt.shard.method = GetParam();
  opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
  auto e = ShardedSvrEngine::Open(opt);
  ASSERT_TRUE(e.ok());
  auto engine = std::move(e).value();
  SetupDocsAndScores(engine.get(), /*initial_docs=*/1, 20, 6, 11);

  for (int64_t gid = 1; gid < 16; ++gid) {
    ASSERT_TRUE(engine
                    ->Insert("docs", {Value::Int(gid),
                                      Value::String("grown doc common")})
                    .ok());
    ASSERT_TRUE(engine
                    ->Insert("scores", {Value::Int(gid),
                                        Value::Double(10.0 * gid)})
                    .ok());
  }
  auto r = engine->Search("common", 20);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 15u);
  // Best score (gid 15) first, ties impossible by construction.
  EXPECT_EQ(r.value()[0].pk, 15);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EmptyShardTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kIdTermScore,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

// --- scatter-gather equivalence vs the single engine ------------------

class ShardedEquivalenceTest
    : public ::testing::TestWithParam<index::Method> {};

TEST_P(ShardedEquivalenceTest, ShardedTopKEqualsSingleEngineUnderChurn) {
  const uint32_t kDocs = 350;
  const uint32_t kVocab = 130;
  const uint32_t kTerms = 10;
  const uint64_t kSeed = 2005;
  const bool with_ts =
      GetParam() == index::Method::kIdTermScore ||
      GetParam() == index::Method::kChunkTermScore;

  SvrEngineOptions shard_opt;
  shard_opt.method = GetParam();
  shard_opt.index_options.chunk.chunking.min_chunk_size = 1;
  // Exercise the per-shard merge machinery while churning.
  shard_opt.merge_policy.enabled = true;
  shard_opt.merge_policy.short_ratio = 0.1;
  shard_opt.merge_policy.min_short_postings = 8;
  shard_opt.merge_policy.check_interval = 64;

  auto single_r = SvrEngine::Open(shard_opt);
  ASSERT_TRUE(single_r.ok());
  auto single = std::move(single_r).value();
  SetupDocsAndScores(single.get(), kDocs, kVocab, kTerms, kSeed);

  ShardedSvrEngineOptions sharded_opt;
  sharded_opt.num_shards = 3;
  sharded_opt.shard = shard_opt;
  auto sharded_r = ShardedSvrEngine::Open(sharded_opt);
  ASSERT_TRUE(sharded_r.ok());
  auto sharded = std::move(sharded_r).value();
  SetupDocsAndScores(sharded.get(), kDocs, kVocab, kTerms, kSeed);

  // Same carve-out as the churn drivers: content updates leave
  // build-time fancy term scores stale by design, so term-score runs
  // redirect that churn into score updates.
  const std::vector<ChurnOp> script =
      MakeChurnScript(kDocs, 600, kVocab, kTerms, !with_ts, kSeed ^ 77);
  ApplyScript(single.get(), script);
  ApplyScript(sharded.get(), script);

  Random rng(kSeed ^ 0xABC);
  uint32_t non_empty = 0;
  for (int q = 0; q < 120; ++q) {
    std::string keywords = "t" + std::to_string(rng.Uniform(kVocab / 4));
    if (q % 2 == 0) {
      keywords += " t" + std::to_string(rng.Uniform(kVocab / 4));
    }
    const bool conjunctive = q % 3 != 0;
    const size_t k = 1 + rng.Uniform(25);
    auto want = single->Search(keywords, k, conjunctive);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    auto got = sharded->Search(keywords, k, conjunctive);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().size(), want.value().size())
        << "query '" << keywords << "' k=" << k;
    for (size_t i = 0; i < got.value().size(); ++i) {
      EXPECT_EQ(got.value()[i].pk, want.value()[i].pk)
          << "query '" << keywords << "' rank " << i;
      EXPECT_DOUBLE_EQ(got.value()[i].score, want.value()[i].score);
      EXPECT_EQ(got.value()[i].row[0].as_int(), want.value()[i].pk);
    }
    if (!got.value().empty()) ++non_empty;
  }
  EXPECT_GT(non_empty, 30u) << "query mix degenerated to empty results";
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ShardedEquivalenceTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kIdTermScore,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

TEST(ShardedTieBreakTest, TiesBreakByGlobalIdExactlyLikeTheSingleEngine) {
  const uint32_t kDocs = 120;
  SvrEngineOptions shard_opt;
  shard_opt.method = index::Method::kChunk;
  shard_opt.index_options.chunk.chunking.min_chunk_size = 1;

  auto single_r = SvrEngine::Open(shard_opt);
  ASSERT_TRUE(single_r.ok());
  auto single = std::move(single_r).value();
  SetupDocsAndScores(single.get(), kDocs, 40, 6, 99);

  ShardedSvrEngineOptions sharded_opt;
  sharded_opt.num_shards = 4;
  sharded_opt.shard = shard_opt;
  auto sharded_r = ShardedSvrEngine::Open(sharded_opt);
  ASSERT_TRUE(sharded_r.ok());
  auto sharded = std::move(sharded_r).value();
  SetupDocsAndScores(sharded.get(), kDocs, 40, 6, 99);

  // Flatten a large band of documents onto the same score and give them
  // a shared term, so the top-k boundary falls inside a tie group that
  // spans shards: only identical (score desc, global id asc) ordering
  // on both sides keeps the lists equal.
  for (int64_t d = 0; d < kDocs; ++d) {
    ASSERT_TRUE(single
                    ->Update("docs", {Value::Int(d),
                                      Value::String("sharedterm filler" +
                                                    std::to_string(d % 7))})
                    .ok());
    ASSERT_TRUE(sharded
                    ->Update("docs", {Value::Int(d),
                                      Value::String("sharedterm filler" +
                                                    std::to_string(d % 7))})
                    .ok());
    const double tied = (d % 3 == 0) ? 777.0 : 100.0 + d;
    ASSERT_TRUE(single
                    ->Update("scores",
                             {Value::Int(d), Value::Double(tied)})
                    .ok());
    ASSERT_TRUE(sharded
                    ->Update("scores",
                             {Value::Int(d), Value::Double(tied)})
                    .ok());
  }
  for (size_t k : {5, 17, 40, 120}) {
    auto want = single->Search("sharedterm", k);
    ASSERT_TRUE(want.ok());
    auto got = sharded->Search("sharedterm", k);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), want.value().size());
    for (size_t i = 0; i < got.value().size(); ++i) {
      EXPECT_EQ(got.value()[i].pk, want.value()[i].pk) << "rank " << i;
      EXPECT_DOUBLE_EQ(got.value()[i].score, want.value()[i].score);
    }
  }
}

TEST(ShardedDegenerateTest, OneShardBehavesLikeThePlainEngine) {
  SvrEngineOptions shard_opt;
  shard_opt.method = index::Method::kChunk;
  shard_opt.index_options.chunk.chunking.min_chunk_size = 1;

  auto single_r = SvrEngine::Open(shard_opt);
  ASSERT_TRUE(single_r.ok());
  auto single = std::move(single_r).value();
  SetupDocsAndScores(single.get(), 150, 50, 8, 3);

  ShardedSvrEngineOptions sharded_opt;
  sharded_opt.num_shards = 1;
  sharded_opt.shard = shard_opt;
  auto sharded_r = ShardedSvrEngine::Open(sharded_opt);
  ASSERT_TRUE(sharded_r.ok());
  auto sharded = std::move(sharded_r).value();
  SetupDocsAndScores(sharded.get(), 150, 50, 8, 3);

  Random rng(55);
  for (int q = 0; q < 40; ++q) {
    const std::string keywords = "t" + std::to_string(rng.Uniform(12));
    auto want = single->Search(keywords, 10);
    auto got = sharded->Search(keywords, 10);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), want.value().size());
    for (size_t i = 0; i < got.value().size(); ++i) {
      EXPECT_EQ(got.value()[i].pk, want.value()[i].pk);
      EXPECT_DOUBLE_EQ(got.value()[i].score, want.value()[i].score);
    }
  }
}

// --- concurrent sharded churn vs per-shard oracle ---------------------

TEST(ShardedChurnTest, ConcurrentScatterGatherMatchesOraclePerShard) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = kTsanBuild ? 300 : 900;
  cfg.vocab = kTsanBuild ? 250 : 700;
  cfg.terms_per_doc = kTsanBuild ? 10 : 16;
  cfg.writer_ops = kTsanBuild ? 600 : 4000;
  cfg.query_threads = 2;
  cfg.validate_every = 3;
  cfg.top_k = 15;

  core::ShardedSvrEngineOptions opt;
  opt.num_shards = 3;
  opt.shard.method = index::Method::kChunk;
  opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
  opt.shard.merge_policy.enabled = true;
  opt.shard.merge_policy.short_ratio = 0.1;
  opt.shard.merge_policy.min_short_postings = 8;
  opt.shard.merge_policy.check_interval = 64;
  opt.shard.background_merge = true;
  opt.shard.scheduler.workers = 2;

  auto engine = workload::SetupShardedChurnEngine(opt, cfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = workload::RunShardedChurn(engine.value().get(), cfg,
                                          /*writer_threads=*/3,
                                          /*run_ms=*/0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().queries_run, 0u);
  EXPECT_GT(result.value().validated_queries, 0u);
  EXPECT_EQ(result.value().mismatches, 0u);
  EXPECT_GE(result.value().writer_ops_done,
            static_cast<uint64_t>(cfg.writer_ops / 2));

  const core::ShardedEngineStats stats = engine.value()->GetStats();
  EXPECT_EQ(stats.shards.size(), 3u);
  EXPECT_TRUE(stats.total.background_merge);
  EXPECT_EQ(stats.total.merge_workers, 6u) << "2 workers x 3 shards";
  engine.value()->Stop();
}

}  // namespace
}  // namespace svr
