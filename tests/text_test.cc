#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/corpus_generator.h"
#include "text/document.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace svr::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto toks = Tokenizer::Tokenize("The Golden-Gate bridge, 1937!");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "the");
  EXPECT_EQ(toks[1], "golden");
  EXPECT_EQ(toks[2], "gate");
  EXPECT_EQ(toks[3], "bridge");
  EXPECT_EQ(toks[4], "1937");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("..., --- !!").empty());
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  TermId a = v.Intern("golden");
  TermId b = v.Intern("gate");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("golden"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.term(a), "golden");
  EXPECT_EQ(v.Lookup("gate"), b);
  EXPECT_EQ(v.Lookup("missing"), Vocabulary::kUnknownTerm);
}

TEST(DocumentTest, FromTokensDeduplicatesAndCounts) {
  Document d = Document::FromTokens({5, 3, 5, 5, 9, 3});
  EXPECT_EQ(d.total_tokens(), 6u);
  EXPECT_EQ(d.num_distinct_terms(), 3u);
  EXPECT_EQ(d.FrequencyOf(5), 3u);
  EXPECT_EQ(d.FrequencyOf(3), 2u);
  EXPECT_EQ(d.FrequencyOf(9), 1u);
  EXPECT_EQ(d.FrequencyOf(100), 0u);
  EXPECT_TRUE(d.Contains(3));
  EXPECT_FALSE(d.Contains(4));
  // Terms sorted ascending.
  EXPECT_TRUE(std::is_sorted(d.terms().begin(), d.terms().end()));
}

TEST(DocumentTest, NormalizedTf) {
  Document d = Document::FromTokens({1, 1, 2, 3});
  EXPECT_DOUBLE_EQ(d.NormalizedTf(1), 0.5);
  EXPECT_DOUBLE_EQ(d.NormalizedTf(2), 0.25);
  EXPECT_DOUBLE_EQ(d.NormalizedTf(99), 0.0);
}

TEST(CorpusTest, DocFreqTracking) {
  Corpus c(10);
  c.Add(Document::FromTokens({1, 2, 2}));
  c.Add(Document::FromTokens({2, 3}));
  EXPECT_EQ(c.num_docs(), 2u);
  EXPECT_EQ(c.DocFreq(2), 2u);  // distinct docs, not occurrences
  EXPECT_EQ(c.DocFreq(1), 1u);
  EXPECT_EQ(c.DocFreq(9), 0u);
}

TEST(CorpusTest, ReplaceAdjustsDocFreq) {
  Corpus c(10);
  c.Add(Document::FromTokens({1, 2}));
  c.Replace(0, Document::FromTokens({2, 3}));
  EXPECT_EQ(c.DocFreq(1), 0u);
  EXPECT_EQ(c.DocFreq(2), 1u);
  EXPECT_EQ(c.DocFreq(3), 1u);
}

TEST(CorpusTest, TermsByFrequencyOrder) {
  Corpus c(5);
  c.Add(Document::FromTokens({0, 1}));
  c.Add(Document::FromTokens({0, 2}));
  c.Add(Document::FromTokens({0, 1}));
  auto by_freq = c.TermsByFrequency();
  EXPECT_EQ(by_freq[0], 0u);  // in 3 docs
  EXPECT_EQ(by_freq[1], 1u);  // in 2 docs
}

TEST(CorpusGeneratorTest, RespectsParameters) {
  CorpusParams p;
  p.num_docs = 50;
  p.terms_per_doc = 30;
  p.vocab_size = 200;
  p.seed = 5;
  Corpus c = GenerateCorpus(p);
  EXPECT_EQ(c.num_docs(), 50u);
  for (DocId d = 0; d < c.num_docs(); ++d) {
    EXPECT_EQ(c.doc(d).total_tokens(), 30u);
    for (TermId t : c.doc(d).terms()) EXPECT_LT(t, 200u);
  }
}

TEST(CorpusGeneratorTest, DeterministicForSeed) {
  CorpusParams p;
  p.num_docs = 20;
  p.terms_per_doc = 10;
  p.vocab_size = 50;
  p.seed = 42;
  Corpus a = GenerateCorpus(p);
  Corpus b = GenerateCorpus(p);
  for (DocId d = 0; d < a.num_docs(); ++d) {
    EXPECT_EQ(a.doc(d).terms(), b.doc(d).terms());
  }
}

TEST(CorpusGeneratorTest, ZipfSkewsTermFrequencies) {
  CorpusParams p;
  p.num_docs = 300;
  p.terms_per_doc = 50;
  p.vocab_size = 1000;
  p.term_zipf = 1.0;
  p.seed = 9;
  Corpus c = GenerateCorpus(p);
  // Low term ids (high Zipf rank) should appear in far more documents.
  EXPECT_GT(c.DocFreq(0), c.DocFreq(500));
  EXPECT_GT(c.DocFreq(0) + c.DocFreq(1) + c.DocFreq(2),
            c.DocFreq(900) + c.DocFreq(901) + c.DocFreq(902));
}

}  // namespace
}  // namespace svr::text
