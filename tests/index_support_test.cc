#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/chunker.h"
#include "index/list_state.h"
#include "index/posting_codec.h"
#include "index/result_heap.h"
#include "index/short_list.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace svr::index {
namespace {

// --- result heap ---------------------------------------------------------

TEST(ResultHeapTest, KeepsBestK) {
  ResultHeap h(3);
  h.Offer(1, 10);
  h.Offer(2, 50);
  h.Offer(3, 30);
  h.Offer(4, 40);
  h.Offer(5, 5);
  auto out = h.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].doc, 2u);
  EXPECT_EQ(out[1].doc, 4u);
  EXPECT_EQ(out[2].doc, 3u);
}

TEST(ResultHeapTest, TieBreaksBySmallerDoc) {
  ResultHeap h(2);
  h.Offer(9, 10);
  h.Offer(3, 10);
  h.Offer(7, 10);
  auto out = h.TakeSorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 3u);
  EXPECT_EQ(out[1].doc, 7u);
}

TEST(ResultHeapTest, MinScoreSentinelUntilFull) {
  ResultHeap h(2);
  EXPECT_LT(h.MinScore(), -1e308);
  h.Offer(1, 5);
  EXPECT_FALSE(h.full());
  EXPECT_LT(h.MinScore(), -1e308);
  h.Offer(2, 7);
  EXPECT_TRUE(h.full());
  EXPECT_EQ(h.MinScore(), 5);
}

TEST(ResultHeapTest, ZeroK) {
  ResultHeap h(0);
  h.Offer(1, 5);
  EXPECT_TRUE(h.TakeSorted().empty());
}

// --- chunker ---------------------------------------------------------------

TEST(ChunkerTest, RatioBoundariesAreGeometric) {
  std::vector<double> scores;
  for (int i = 1; i <= 1000; ++i) scores.push_back(i * 10.0);
  ChunkOptions opt;
  opt.chunk_ratio = 2.0;
  opt.min_chunk_size = 1;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  const Chunker& ch = c.value();
  EXPECT_GT(ch.num_base_chunks(), 3u);
  for (ChunkId i = 2; i < ch.num_base_chunks(); ++i) {
    EXPECT_NEAR(ch.LowerBound(i) / ch.LowerBound(i - 1), 2.0, 1e-9);
  }
}

TEST(ChunkerTest, ChunkOfMatchesLowerBounds) {
  std::vector<double> scores = {1, 5, 20, 80, 400, 2000, 9000};
  ChunkOptions opt;
  opt.chunk_ratio = 3.0;
  opt.min_chunk_size = 1;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  const Chunker& ch = c.value();
  for (double s : {0.0, 0.5, 1.0, 4.0, 17.0, 99.0, 1234.0, 8999.0}) {
    ChunkId cid = ch.ChunkOf(s);
    EXPECT_LE(ch.LowerBound(cid), s) << s;
    EXPECT_GT(ch.LowerBound(cid + 1), s) << s;
  }
}

TEST(ChunkerTest, HigherScoreNeverLowerChunk) {
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) scores.push_back(i * i * 0.37);
  ChunkOptions opt;
  opt.chunk_ratio = 1.7;
  opt.min_chunk_size = 10;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  const Chunker& ch = c.value();
  double prev = 0;
  ChunkId prev_cid = ch.ChunkOf(0);
  for (double s = 0; s < 2e6; s += 997.3) {
    ChunkId cid = ch.ChunkOf(s);
    EXPECT_GE(cid, prev_cid) << s;
    prev_cid = cid;
    prev = s;
  }
  (void)prev;
}

TEST(ChunkerTest, ExtrapolatesAboveMaxScore) {
  std::vector<double> scores = {1, 10, 100};
  ChunkOptions opt;
  opt.chunk_ratio = 10.0;
  opt.min_chunk_size = 1;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  const Chunker& ch = c.value();
  const ChunkId top = ch.ChunkOf(100.0);
  EXPECT_GT(ch.ChunkOf(1e4), top);
  EXPECT_GT(ch.ChunkOf(1e8), ch.ChunkOf(1e4));
  // thresholdValueOf is simply cid + 1.
  EXPECT_EQ(Chunker::ThresholdValueOf(7), 8u);
}

TEST(ChunkerTest, MinChunkSizeMergesSmallChunks) {
  // 1000 docs all with distinct scores; min size 100 caps chunk count.
  std::vector<double> scores;
  for (int i = 1; i <= 1000; ++i) scores.push_back(i * 1.001);
  ChunkOptions opt;
  opt.chunk_ratio = 1.01;  // would make hundreds of chunks
  opt.min_chunk_size = 100;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  EXPECT_LE(c.value().num_base_chunks(), 11u);
}

TEST(ChunkerTest, AllZeroScoresSingleChunk) {
  std::vector<double> scores(50, 0.0);
  ChunkOptions opt;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().num_base_chunks(), 1u);
  EXPECT_EQ(c.value().ChunkOf(0.0), 0u);
  EXPECT_GT(c.value().ChunkOf(1e9), 0u);  // still extrapolates
}

TEST(ChunkerTest, EqualCountStrategy) {
  std::vector<double> scores;
  for (int i = 1; i <= 100; ++i) scores.push_back(static_cast<double>(i));
  ChunkOptions opt;
  opt.strategy = ChunkStrategy::kEqualCount;
  opt.target_num_chunks = 4;
  opt.min_chunk_size = 1;
  auto c = Chunker::Build(scores, opt);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().num_base_chunks(), 4u);
}

TEST(ChunkerTest, RejectsBadInput) {
  ChunkOptions opt;
  EXPECT_FALSE(Chunker::Build({-1.0}, opt).ok());
  opt.chunk_ratio = 0.9;
  EXPECT_FALSE(Chunker::Build({1.0}, opt).ok());
  EXPECT_FALSE(Chunker::Build({}, opt).ok());
}

TEST(ChunkerTest, EmptyCollectionGetsDegenerateChunker) {
  // A fresh engine — or an empty shard of a sharded one — builds a
  // single-boundary chunker; documents inserted later land in
  // geometrically extrapolated chunks above it.
  ChunkOptions opt;
  opt.min_chunk_size = 1;
  auto c = Chunker::Build({}, opt);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c.value().num_base_chunks(), 1u);
  EXPECT_EQ(c.value().ChunkOf(0.0), 0u);
  EXPECT_DOUBLE_EQ(c.value().LowerBound(0), 0.0);
  const ChunkId high = c.value().ChunkOf(1e6);
  EXPECT_GT(high, 0u);
  EXPECT_LE(c.value().LowerBound(high), 1e6);
}

// --- posting codecs --------------------------------------------------------

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(256);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 32);
    blobs_ = std::make_unique<storage::BlobStore>(pool_.get());
  }
  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::BlobStore> blobs_;
};

TEST_F(CodecTest, IdListRoundTrip) {
  std::vector<DocId> docs = {0, 1, 5, 6, 7, 100, 10000, 2000000};
  std::string buf;
  EncodeIdList(docs, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());
  IdListReader r(blobs_->NewReader(ref.value()), /*with_ts=*/false);
  ASSERT_TRUE(r.Init().ok());
  for (DocId d : docs) {
    ASSERT_TRUE(r.Valid());
    EXPECT_EQ(r.doc(), d);
    ASSERT_TRUE(r.Next().ok());
  }
  EXPECT_FALSE(r.Valid());
}

TEST_F(CodecTest, IdTsListRoundTrip) {
  std::vector<IdPosting> ps = {{3, 0.5f}, {9, 0.25f}, {700, 0.125f}};
  std::string buf;
  EncodeIdTsList(ps, /*with_ts=*/true, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());
  IdListReader r(blobs_->NewReader(ref.value()), /*with_ts=*/true);
  ASSERT_TRUE(r.Init().ok());
  for (const auto& p : ps) {
    ASSERT_TRUE(r.Valid());
    EXPECT_EQ(r.doc(), p.doc);
    EXPECT_EQ(r.term_score(), p.term_score);
    ASSERT_TRUE(r.Next().ok());
  }
  EXPECT_FALSE(r.Valid());
}

TEST_F(CodecTest, ScoreListRoundTrip) {
  std::vector<ScorePosting> ps = {
      {900.5, 4}, {900.5, 9}, {40.25, 2}, {0.0, 77}};
  std::string buf;
  EncodeScoreList(ps, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());
  ScoreListReader r(blobs_->NewReader(ref.value()));
  ASSERT_TRUE(r.Init().ok());
  for (const auto& p : ps) {
    ASSERT_TRUE(r.Valid());
    EXPECT_EQ(r.score(), p.score);
    EXPECT_EQ(r.doc(), p.doc);
    ASSERT_TRUE(r.Next().ok());
  }
  EXPECT_FALSE(r.Valid());
}

TEST_F(CodecTest, ChunkListRoundTripAndSkip) {
  std::vector<ChunkGroup> groups(3);
  groups[0].cid = 9;
  groups[0].postings = {{1, 0}, {4, 0}, {9, 0}};
  groups[1].cid = 5;
  for (DocId d = 0; d < 500; ++d) groups[1].postings.push_back({d * 3, 0});
  groups[2].cid = 1;
  groups[2].postings = {{2, 0}, {3, 0}};
  std::string buf;
  EncodeChunkList(groups, /*with_ts=*/false, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());

  // Full scan.
  {
    ChunkListReader r(blobs_->NewReader(ref.value()), false);
    ASSERT_TRUE(r.Init().ok());
    for (const auto& g : groups) {
      ASSERT_TRUE(r.HasGroup());
      EXPECT_EQ(r.cid(), g.cid);
      for (const auto& p : g.postings) {
        ASSERT_TRUE(r.Valid());
        EXPECT_EQ(r.doc(), p.doc);
        ASSERT_TRUE(r.Next().ok());
      }
      EXPECT_FALSE(r.Valid());
      ASSERT_TRUE(r.NextGroup().ok());
    }
    EXPECT_FALSE(r.HasGroup());
  }

  // Skip the large middle group without reading its pages.
  {
    ChunkListReader r(blobs_->NewReader(ref.value()), false);
    ASSERT_TRUE(r.Init().ok());
    EXPECT_EQ(r.cid(), 9u);
    ASSERT_TRUE(r.SkipGroup().ok());
    ASSERT_TRUE(r.NextGroup().ok());
    EXPECT_EQ(r.cid(), 5u);
    ASSERT_TRUE(r.SkipGroup().ok());
    ASSERT_TRUE(r.NextGroup().ok());
    EXPECT_EQ(r.cid(), 1u);
    ASSERT_TRUE(r.Valid());
    EXPECT_EQ(r.doc(), 2u);
  }
}

TEST_F(CodecTest, FancyListRoundTrip) {
  std::vector<IdPosting> ps = {{10, 0.9f}, {20, 0.8f}, {30, 0.7f}};
  std::string buf;
  EncodeFancyList(ps, 0.7f, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());
  std::vector<IdPosting> out;
  float min_ts;
  ASSERT_TRUE(
      DecodeFancyList(blobs_->NewReader(ref.value()), &out, &min_ts).ok());
  EXPECT_EQ(min_ts, 0.7f);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].doc, 20u);
  EXPECT_EQ(out[1].term_score, 0.8f);
}

TEST_F(CodecTest, EmptyListsAreValid) {
  std::string buf;
  EncodeIdList({}, &buf);
  auto ref = blobs_->Write(buf);
  ASSERT_TRUE(ref.ok());
  IdListReader r(blobs_->NewReader(ref.value()), false);
  ASSERT_TRUE(r.Init().ok());
  EXPECT_FALSE(r.Valid());

  // Completely absent list (invalid ref) also reads as empty.
  IdListReader r2(blobs_->NewReader(storage::BlobRef()), false);
  ASSERT_TRUE(r2.Init().ok());
  EXPECT_FALSE(r2.Valid());
}

// --- short list / list state -----------------------------------------------

class ShortListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(512);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 256);
  }
  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
};

TEST_F(ShortListTest, ScoreKeyedScanOrder) {
  auto sl = ShortList::Create(pool_.get(), ShortList::KeyKind::kScore);
  ASSERT_TRUE(sl.ok());
  auto& list = *sl.value();
  ASSERT_TRUE(list.Put(7, 10.0, 3, PostingOp::kAdd, 0).ok());
  ASSERT_TRUE(list.Put(7, 99.0, 1, PostingOp::kAdd, 0).ok());
  ASSERT_TRUE(list.Put(7, 99.0, 0, PostingOp::kAdd, 0).ok());
  ASSERT_TRUE(list.Put(8, 500.0, 9, PostingOp::kAdd, 0).ok());  // other term

  auto c = list.Scan(7);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.sort_value(), 99.0);
  EXPECT_EQ(c.doc(), 0u);
  c.Next();
  EXPECT_EQ(c.doc(), 1u);
  c.Next();
  EXPECT_EQ(c.sort_value(), 10.0);
  EXPECT_EQ(c.doc(), 3u);
  c.Next();
  EXPECT_FALSE(c.Valid());  // does not bleed into term 8
}

TEST_F(ShortListTest, ChunkKeyedScanOrderAndOps) {
  auto sl = ShortList::Create(pool_.get(), ShortList::KeyKind::kChunk);
  ASSERT_TRUE(sl.ok());
  auto& list = *sl.value();
  ASSERT_TRUE(list.Put(1, 5, 10, PostingOp::kAdd, 0.5f).ok());
  ASSERT_TRUE(list.Put(1, 9, 20, PostingOp::kRemove, 0).ok());
  ASSERT_TRUE(list.Put(1, 9, 5, PostingOp::kAdd, 0.25f).ok());

  auto c = list.Scan(1);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.sort_value(), 9.0);
  EXPECT_EQ(c.doc(), 5u);
  EXPECT_EQ(c.op(), PostingOp::kAdd);
  EXPECT_EQ(c.term_score(), 0.25f);
  c.Next();
  EXPECT_EQ(c.doc(), 20u);
  EXPECT_EQ(c.op(), PostingOp::kRemove);
  c.Next();
  EXPECT_EQ(c.sort_value(), 5.0);
  c.Next();
  EXPECT_FALSE(c.Valid());
}

TEST_F(ShortListTest, DeleteAndClear) {
  auto sl = ShortList::Create(pool_.get(), ShortList::KeyKind::kChunk);
  ASSERT_TRUE(sl.ok());
  auto& list = *sl.value();
  ASSERT_TRUE(list.Put(1, 5, 10, PostingOp::kAdd, 0).ok());
  ASSERT_TRUE(list.Put(1, 6, 11, PostingOp::kAdd, 0).ok());
  EXPECT_EQ(list.num_postings(), 2u);
  ASSERT_TRUE(list.Delete(1, 5, 10).ok());
  EXPECT_TRUE(list.Delete(1, 5, 10).IsNotFound());
  EXPECT_EQ(list.num_postings(), 1u);
  ASSERT_TRUE(list.Clear().ok());
  EXPECT_EQ(list.num_postings(), 0u);
  EXPECT_FALSE(list.Scan(1).Valid());
}

TEST_F(ShortListTest, ListStateRoundTrip) {
  auto ls = ListStateTable::Create(pool_.get());
  ASSERT_TRUE(ls.ok());
  auto& table = *ls.value();
  ListStateTable::Entry e;
  EXPECT_TRUE(table.Get(42, &e).IsNotFound());
  ASSERT_TRUE(table.Put(42, {87.13, false}).ok());
  ASSERT_TRUE(table.Get(42, &e).ok());
  EXPECT_EQ(e.list_value, 87.13);
  EXPECT_FALSE(e.in_short_list);
  ASSERT_TRUE(table.Put(42, {124.2, true}).ok());
  ASSERT_TRUE(table.Get(42, &e).ok());
  EXPECT_EQ(e.list_value, 124.2);
  EXPECT_TRUE(e.in_short_list);
  ASSERT_TRUE(table.Remove(42).ok());
  EXPECT_TRUE(table.Get(42, &e).IsNotFound());
}

}  // namespace
}  // namespace svr::index
