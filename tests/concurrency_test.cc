// Concurrency-subsystem tests (docs/concurrency.md):
//  - EpochManager unit semantics: no reclaim while any guard that could
//    have seen a retired object is live, reclaim after release.
//  - The two-phase merge publish protocol, driven deterministically
//    without threads: install must abort when the term's short list
//    changed after prepare, and the retired blob must wait for its
//    readers.
//  - The whole engine under real threads: mixed insert/update/delete/
//    content churn racing query threads with the background scheduler
//    on; every validated top-k must match the brute-force oracle at its
//    pinned ReadView (docs/concurrency.md). (This suite is also a TSan
//    target in ci.sh.)

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/merge_scheduler.h"
#include "core/oracle.h"
#include "core/svr_engine.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "workload/concurrent_driver.h"

// ThreadSanitizer slows the hot loops ~20x; the thread interleavings it
// needs to see do not require the full workload volume, so the churn
// sizes scale down under TSan builds.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SVR_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SVR_TSAN_BUILD 1
#endif
#ifndef SVR_TSAN_BUILD
#define SVR_TSAN_BUILD 0
#endif

namespace svr {
namespace {

constexpr bool kTsanBuild = SVR_TSAN_BUILD != 0;

using concurrency::EpochManager;

// --- EpochManager units -----------------------------------------------

TEST(EpochManagerTest, ReclaimsImmediatelyWithNoGuards) {
  EpochManager epochs;
  int freed = 0;
  epochs.Retire([&] { ++freed; });
  EXPECT_EQ(epochs.pending(), 1u);
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(epochs.pending(), 0u);
  EXPECT_EQ(epochs.reclaimed_total(), 1u);
}

TEST(EpochManagerTest, NoReclaimWhileGuarded) {
  EpochManager epochs;
  int freed = 0;
  EpochManager::Guard g = epochs.Enter();
  // The guard entered before the retirement: it could hold a pointer to
  // the object, so nothing may be freed while it lives.
  epochs.Retire([&] { ++freed; });
  EXPECT_EQ(epochs.ReclaimExpired(), 0u);
  EXPECT_EQ(freed, 0);
  EXPECT_EQ(epochs.pending(), 1u);

  g.Release();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, LateGuardsDoNotBlockEarlierRetirements) {
  EpochManager epochs;
  int freed = 0;
  epochs.Retire([&] { ++freed; });
  // This reader entered *after* the retirement unpublished the object;
  // it provably cannot reach it, so reclamation proceeds.
  EpochManager::Guard late = epochs.Enter();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, EveryOverlappingGuardMustExit) {
  EpochManager epochs;
  int freed = 0;
  EpochManager::Guard g1 = epochs.Enter();
  EpochManager::Guard g2 = epochs.Enter();
  epochs.Retire([&] { ++freed; });
  g1.Release();
  EXPECT_EQ(epochs.ReclaimExpired(), 0u) << "g2 still pins the epoch";
  g2.Release();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, RetirementsReclaimInOrderAcrossEpochs) {
  EpochManager epochs;
  std::vector<int> freed;
  epochs.Retire([&] { freed.push_back(1); });
  EpochManager::Guard g = epochs.Enter();  // pins only the second epoch
  epochs.Retire([&] { freed.push_back(2); });
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 1);
  g.Release();
  EXPECT_EQ(epochs.ReclaimExpired(), 1u);
  ASSERT_EQ(freed.size(), 2u);
  EXPECT_EQ(freed[1], 2);
}

TEST(EpochManagerTest, DestructionRunsPendingReclaims) {
  int freed = 0;
  {
    EpochManager epochs;
    epochs.Retire([&] { ++freed; });
  }
  EXPECT_EQ(freed, 1);
}

TEST(EpochManagerTest, GuardMoveTransfersOwnership) {
  EpochManager epochs;
  EpochManager::Guard a = epochs.Enter();
  EXPECT_EQ(epochs.active_guards(), 1u);
  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_EQ(epochs.active_guards(), 1u);
  b.Release();
  EXPECT_EQ(epochs.active_guards(), 0u);
}

TEST(EpochManagerTest, ConcurrentGuardsAndRetirements) {
  // Hammer the manager from several threads; TSan (ci.sh) checks the
  // synchronization, the counters check nothing is lost or doubled.
  EpochManager epochs;
  constexpr int kThreads = 4;
  constexpr int kIters = kTsanBuild ? 100 : 500;
  std::atomic<int> freed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        EpochManager::Guard g = epochs.Enter();
        epochs.Retire([&] { freed.fetch_add(1); });
        g.Release();
        epochs.ReclaimExpired();
      }
    });
  }
  for (auto& w : workers) w.join();
  while (epochs.pending() > 0) epochs.ReclaimExpired();
  EXPECT_EQ(freed.load(), kThreads * kIters);
  EXPECT_EQ(epochs.reclaimed_total(),
            static_cast<uint64_t>(kThreads * kIters));
}

// --- deterministic two-phase merge protocol ---------------------------

using relational::Value;

class TwoPhaseMergeTest : public ::testing::TestWithParam<index::Method> {
 protected:
  void SetUp() override {
    workload::ConcurrentChurnConfig cfg;
    cfg.initial_docs = 300;
    cfg.vocab = 120;
    cfg.terms_per_doc = 12;
    core::SvrEngineOptions opt;
    opt.method = GetParam();
    opt.index_options.chunk.chunking.min_chunk_size = 1;
    // Policy stays disabled: merges are driven by hand below.
    auto e = workload::SetupChurnEngine(opt, cfg);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    engine_ = std::move(e).value();
    // Churn a little so short lists exist. Content updates feed the
    // short lists of every method (the ID family ignores score moves).
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(engine_
                      ->Update("scores", {Value::Int(i),
                                          Value::Double(90000.0 + i)})
                      .ok());
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          engine_
              ->Update("docs",
                       {Value::Int(i),
                        Value::String("fresh" + std::to_string(i % 5) +
                                      " churned tokens t1 t2 t3")})
              .ok());
    }
  }

  /// First term with actual merge work, with its plan.
  void PrepareDirtyTerm(std::unique_ptr<index::TermMergePlan>* plan,
                        TermId* term) {
    index::TextIndex* idx = engine_->text_index();
    plan->reset();
    for (TermId t = 0; t < 2000 && *plan == nullptr; ++t) {
      auto r = idx->PrepareMergeTerm(t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      *plan = std::move(r).value();
      *term = t;
    }
    ASSERT_NE(*plan, nullptr) << "no term with merge work found";
  }

  std::unique_ptr<core::SvrEngine> engine_;
};

TEST_P(TwoPhaseMergeTest, InstallTakesFinePathWhenShortListChanges) {
  index::TextIndex* idx = engine_->text_index();
  ASSERT_GT(idx->ShortPostingCount(), 0u);

  std::unique_ptr<index::TermMergePlan> plan;
  TermId term = 0;
  PrepareDirtyTerm(&plan, &term);

  // Between prepare and install, a content update strips `term` from a
  // document that contains it: every method then writes a REM/delete
  // into the term's short list, bumping its version. The old protocol
  // aborted here; the fine-grained install must now succeed, deleting
  // only the postings the prepare folded in — the REM it never saw
  // survives and keeps layering over the new blob (the hot-term case).
  DocId victim = kInvalidDocId;
  for (DocId d = 0; d < engine_->corpus()->num_docs(); ++d) {
    if (engine_->corpus()->doc(d).Contains(term)) {
      victim = d;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidDocId) << "term has no live document";
  ASSERT_TRUE(engine_
                  ->Update("docs", {Value::Int(victim),
                                    Value::String("replacementtoken")})
                  .ok());

  const uint64_t fine_before = idx->stats().merge_installs_fine;
  Status st = idx->InstallMergeTerm(plan.get(), nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(idx->stats().merge_installs_fine, fine_before + 1);
  EXPECT_EQ(idx->stats().merge_install_aborts, 0u);

  // And the index still answers correctly (quiescent spot-check: the
  // direct install above bypassed the engine's publish, so compare the
  // live index against the live oracle).
  index::Query q;
  q.terms.push_back(term);
  std::vector<index::SearchResult> got, want;
  ASSERT_TRUE(engine_->text_index()->TopK(q, 10, &got).ok());
  core::BruteForceOracle oracle(engine_->corpus(), engine_->score_table());
  const bool with_ts =
      engine_->text_index()->name().find("TermScore") != std::string::npos;
  ASSERT_TRUE(oracle.TopK(q, 10, with_ts, &want).ok());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
  }
}

TEST_P(TwoPhaseMergeTest, InstallAbortsWhenBlobRepublishedAfterPrepare) {
  index::TextIndex* idx = engine_->text_index();
  ASSERT_GT(idx->ShortPostingCount(), 0u);

  std::unique_ptr<index::TermMergePlan> plan;
  TermId term = 0;
  PrepareDirtyTerm(&plan, &term);

  // A competing merge lands between prepare and install: the term's
  // published blob is swapped, which the short list cannot reconcile —
  // the stale install must observe the conflict and abort. (The
  // scheduler's pending set prevents this race in production; the
  // counter records it if it ever happens.)
  ASSERT_TRUE(idx->MergeTerm(term).ok());

  Status st = idx->InstallMergeTerm(plan.get(), nullptr);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(idx->stats().merge_install_aborts, 1u);

  // Re-running the merge from scratch converges, and queries agree with
  // the oracle.
  ASSERT_TRUE(idx->MergeTerm(term).ok());
  index::Query q;
  q.terms.push_back(term);
  std::vector<index::SearchResult> got, want;
  ASSERT_TRUE(idx->TopK(q, 10, &got).ok());
  core::BruteForceOracle oracle(engine_->corpus(), engine_->score_table());
  const bool with_ts =
      idx->name().find("TermScore") != std::string::npos;
  ASSERT_TRUE(oracle.TopK(q, 10, with_ts, &want).ok());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
  }
}

TEST_P(TwoPhaseMergeTest, InstallPublishesAndRetiresOldBlobThroughEpochs) {
  index::TextIndex* idx = engine_->text_index();
  ASSERT_GT(idx->ShortPostingCount(), 0u);

  std::unique_ptr<index::TermMergePlan> plan;
  TermId term = 0;
  PrepareDirtyTerm(&plan, &term);

  // Install with a retirer that defers to the epoch manager while a
  // reader guard is live: the old blob must stay allocated until the
  // guard exits. Drain the engine's own commit-batch retirements first
  // (quiescent: everything pending is reclaimable) so the counters below
  // see only this test's retire.
  concurrency::EpochManager* epochs = engine_->epoch_manager();
  epochs->ReclaimExpired();
  concurrency::EpochManager::Guard reader = epochs->Enter();
  int retired = 0;
  index::BlobRetirer retirer = [&](const storage::BlobRef& ref) {
    ++retired;
    epochs->Retire([idx, ref] { (void)idx->ReclaimBlob(ref); });
  };
  const uint64_t merges_before = idx->stats().term_merges;
  Status st = idx->InstallMergeTerm(plan.get(), retirer);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(idx->stats().term_merges, merges_before + 1);

  if (retired > 0) {
    EXPECT_EQ(epochs->pending(), static_cast<size_t>(retired));
    EXPECT_EQ(epochs->ReclaimExpired(), 0u)
        << "reader guard still pins the retired blob";
    reader.Release();
    EXPECT_EQ(epochs->ReclaimExpired(), static_cast<size_t>(retired));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMergeMethods, TwoPhaseMergeTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

// --- engine-level concurrent churn vs oracle --------------------------

class ConcurrentChurnTest : public ::testing::TestWithParam<index::Method> {
};

TEST_P(ConcurrentChurnTest, ConcurrentTopKMatchesOracleAtItsSnapshot) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = kTsanBuild ? 300 : 800;
  cfg.vocab = kTsanBuild ? 250 : 600;
  cfg.terms_per_doc = kTsanBuild ? 10 : 16;
  cfg.writer_ops = kTsanBuild ? 500 : 3000;
  cfg.query_threads = 2;
  cfg.validate_every = 3;  // every third query is oracle-checked
  cfg.top_k = 15;

  core::SvrEngineOptions opt;
  opt.method = GetParam();
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.merge_policy.enabled = true;
  opt.merge_policy.short_ratio = 0.1;
  opt.merge_policy.min_short_postings = 8;
  opt.merge_policy.check_interval = 64;
  opt.background_merge = true;

  auto engine = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = workload::RunConcurrentChurn(engine.value().get(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result.value().queries_run, 0u);
  EXPECT_GT(result.value().validated_queries, 0u);
  EXPECT_EQ(result.value().mismatches, 0u);

  // The background scheduler actually worked: merges happened off the
  // write path and their retired blobs were reclaimed through epochs.
  engine.value()->merge_scheduler()->WaitIdle();
  const core::EngineStats stats = engine.value()->GetStats();
  EXPECT_TRUE(stats.background_merge);
  EXPECT_GT(stats.merge_jobs_enqueued, 0u);
  EXPECT_GT(stats.index.term_merges, 0u);
  EXPECT_EQ(stats.reclaim_pending, 0u);
  engine.value()->Stop();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ConcurrentChurnTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kIdTermScore,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

// --- scheduler behaviour ----------------------------------------------

TEST(MergeSchedulerTest, DedupsAndBoundsTheQueue) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 200;
  cfg.vocab = 100;
  cfg.terms_per_doc = 10;
  core::SvrEngineOptions opt;
  opt.method = index::Method::kChunk;
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.merge_policy.enabled = true;
  opt.background_merge = true;
  opt.scheduler.queue_capacity = 4;
  auto engine_r = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine_r.ok());
  auto engine = std::move(engine_r).value();
  concurrency::MergeScheduler* sched = engine->merge_scheduler();
  ASSERT_NE(sched, nullptr);
  ASSERT_TRUE(sched->running());

  // Flood with more terms than the queue holds; dedup + capacity caps
  // the accepted count, and nothing is lost correctness-wise (dropped
  // triggers re-fire later by design).
  std::vector<TermId> terms;
  for (TermId t = 0; t < 64; ++t) terms.push_back(t);
  const size_t accepted = sched->EnqueueMany(terms);
  EXPECT_LE(accepted, 64u);
  sched->WaitIdle();
  const concurrency::MergeSchedulerStats stats = sched->StatsSnapshot();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.enqueued, accepted);
  EXPECT_TRUE(sched->first_error().ok())
      << sched->first_error().ToString();
  engine->Stop();
}

// Deterministic scheduler harness: a stub index whose PrepareMergeTerm
// can block (to pin jobs in flight) or fail (to set the sticky error),
// so pool behaviour is testable without racing a real engine. The hooks
// play the engine's role (pin-view prepare / writer-side install).
class StubIndex : public index::TextIndex {
 public:
  std::string name() const override { return "Stub"; }
  Status Build() override { return Status::OK(); }
  Status OnScoreUpdate(DocId, double) override { return Status::OK(); }
  Status TopK(const index::Query&, size_t,
              std::vector<index::SearchResult>*) override {
    return Status::OK();
  }
  uint64_t LongListBytes() const override { return 0; }

  Result<std::unique_ptr<index::TermMergePlan>> PrepareMergeTerm(
      TermId term) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++active_;
      ++calls_;
      entered_.notify_all();
      release_cv_.wait(lock, [this] { return !hold_; });
      --active_;
    }
    if (fail_) return Status::Internal("stub prepare failure");
    (void)term;
    return std::unique_ptr<index::TermMergePlan>();  // nothing to merge
  }

  void Hold() {
    std::lock_guard<std::mutex> lock(mu_);
    hold_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      hold_ = false;
    }
    release_cv_.notify_all();
  }
  /// Blocks until `n` prepares are simultaneously in flight (requires a
  /// prior Hold()); false on timeout — the pool is smaller than `n`.
  bool AwaitActive(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    return entered_.wait_for(lock, std::chrono::seconds(10),
                             [&] { return active_ >= n; });
  }
  void set_fail(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_ = fail;
  }
  size_t calls() {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_;
  std::condition_variable release_cv_;
  size_t active_ = 0;
  size_t calls_ = 0;
  bool hold_ = false;
  bool fail_ = false;
};

concurrency::MergeHostHooks StubHooks(StubIndex* stub) {
  concurrency::MergeHostHooks hooks;
  hooks.prepare = [stub](TermId term,
                         std::unique_ptr<index::TermMergePlan>* plan)
      -> Status {
    plan->reset();
    auto r = stub->PrepareMergeTerm(term);
    SVR_RETURN_NOT_OK(r.status());
    *plan = std::move(r).value();
    return Status::OK();
  };
  hooks.install = [stub](index::TermMergePlan* plan) {
    return stub->InstallMergeTerm(plan, nullptr);
  };
  hooks.sync_merge = [stub](TermId term) { return stub->MergeTerm(term); };
  return hooks;
}

TEST(MergeSchedulerPoolTest, WorkersRunIndependentTermsConcurrently) {
  StubIndex stub;
  concurrency::EpochManager epochs;
  concurrency::MergeSchedulerOptions opt;
  opt.workers = 4;
  concurrency::MergeScheduler sched(&epochs, StubHooks(&stub), opt);
  sched.Start();
  EXPECT_EQ(sched.StatsSnapshot().workers, 4u);

  stub.Hold();
  for (TermId t = 0; t < 4; ++t) EXPECT_TRUE(sched.Enqueue(t));
  // All four jobs must be *simultaneously* inside prepare: a pool of one
  // (the PR-3 scheduler) would never get past 1.
  EXPECT_TRUE(stub.AwaitActive(4)) << "pool did not run 4 jobs at once";
  stub.Release();
  sched.WaitIdle();
  const concurrency::MergeSchedulerStats stats = sched.StatsSnapshot();
  EXPECT_EQ(stats.enqueued, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_TRUE(sched.first_error().ok());
  sched.Stop();
}

TEST(MergeSchedulerPoolTest, InFlightTermsDedupAcrossTheWholePool) {
  StubIndex stub;
  concurrency::EpochManager epochs;
  concurrency::MergeSchedulerOptions opt;
  opt.workers = 3;
  concurrency::MergeScheduler sched(&epochs, StubHooks(&stub), opt);
  sched.Start();

  stub.Hold();
  ASSERT_TRUE(sched.Enqueue(7));
  ASSERT_TRUE(stub.AwaitActive(1));
  // The term is in flight (not merely queued): re-enqueues must be
  // dedup hits, so no second worker can prepare the same term.
  EXPECT_FALSE(sched.Enqueue(7));
  EXPECT_FALSE(sched.Enqueue(7));
  EXPECT_EQ(sched.StatsSnapshot().dedup_hits, 2u);
  stub.Release();
  sched.WaitIdle();
  EXPECT_EQ(stub.calls(), 1u) << "a duplicate of an in-flight term ran";

  // Once the job finished, the term may be queued again.
  EXPECT_TRUE(sched.Enqueue(7));
  sched.WaitIdle();
  EXPECT_EQ(stub.calls(), 2u);
  sched.Stop();
}

TEST(MergeSchedulerPoolTest, FirstErrorIsStickyWithinARunAndClearsOnRestart) {
  StubIndex stub;
  concurrency::EpochManager epochs;
  concurrency::MergeScheduler sched(&epochs, StubHooks(&stub), {});
  sched.Start();

  stub.set_fail(true);
  ASSERT_TRUE(sched.Enqueue(1));
  sched.WaitIdle();
  EXPECT_FALSE(sched.first_error().ok());

  // Regression: the sticky error used to survive Stop()/Start(), so a
  // restarted scheduler kept failing every write with a stale status.
  sched.Stop();
  sched.Start();
  EXPECT_TRUE(sched.first_error().ok())
      << "restart must clear the previous run's sticky error, got "
      << sched.first_error().ToString();

  // And the restarted run latches fresh failures again.
  ASSERT_TRUE(sched.Enqueue(2));
  sched.WaitIdle();
  EXPECT_FALSE(sched.first_error().ok());
  sched.Stop();
}

TEST(MergeSchedulerTest, StopIsIdempotentAndRestartable) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 100;
  cfg.vocab = 80;
  cfg.terms_per_doc = 8;
  core::SvrEngineOptions opt;
  opt.method = index::Method::kChunk;
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.merge_policy.enabled = true;
  opt.background_merge = true;
  auto engine_r = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine_r.ok());
  auto engine = std::move(engine_r).value();
  ASSERT_TRUE(engine->merge_scheduler()->running());
  engine->Stop();
  engine->Stop();
  EXPECT_FALSE(engine->merge_scheduler()->running());
  ASSERT_TRUE(engine->Start().ok());
  EXPECT_TRUE(engine->merge_scheduler()->running());
  engine->Stop();
}

// Regression (PR 7 static-analysis sweep): BufferPool::stats() and
// PageStore::stats() used to read their counters without the lock, a
// data race against any page IO. They now return a locked by-value
// snapshot; this runs readers against live IO so the TSan leg proves it.
TEST(BufferPoolTest, StatsReadersRaceLiveIo) {
  storage::InMemoryPageStore store(256);
  storage::BufferPool pool(&store, 4);  // small: constant eviction
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> stats_readers;
  for (int t = 0; t < 2; ++t) {
    stats_readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto ps = pool.stats();
        const auto ss = store.stats();
        // hits/misses/evictions only grow; reading torn values here
        // showed up as nonsense sums before the fix.
        if (ps.hits + ps.misses + ps.evictions + ss.reads + ss.writes >
            0) {
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const int kWriters = 3;
  const int kPagesPerWriter = SVR_TSAN_BUILD ? 60 : 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::vector<storage::PageId> ids;
      for (int i = 0; i < kPagesPerWriter; ++i) {
        storage::PageHandle h;
        ASSERT_TRUE(pool.NewPage(&h).ok());
        h.mutable_data()[0] = static_cast<char>(t);
        ids.push_back(h.id());
        h.Release();
        storage::PageHandle r;
        ASSERT_TRUE(pool.Fetch(ids[i / 2], &r).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : stats_readers) r.join();

  EXPECT_GT(reads.load(), 0u);
  const auto ps = pool.stats();
  EXPECT_GT(ps.evictions, 0u);
  EXPECT_GT(store.stats().writes, 0u);
}

}  // namespace
}  // namespace svr
