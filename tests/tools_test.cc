// The repo's Python lint/checker tools, run through ctest so a broken
// tool fails tier-1 and not just the CI static job:
//
//  - tools/check_lock_order.py --self-test: the extractor must accept a
//    clean synthetic source set and reject one with a seeded lock-order
//    cycle (the acceptance test of the lint itself).
//  - tools/check_lock_order.py over the real tree: the declared order
//    of docs/static_analysis.md must hold for src/ as committed.
//  - tools/check_bench_json.py --self-test: every bench checker must
//    accept its passing fixture and reject its seeded failure.
//
// SVR_SOURCE_DIR is injected by CMake; the suite skips (rather than
// fails) where python3 is unavailable, mirroring ci.sh's fallback.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

bool HavePython3() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

int RunTool(const std::string& args) {
  const std::string cmd =
      "python3 " + std::string(SVR_SOURCE_DIR) + "/" + args;
  return std::system(cmd.c_str());
}

#define SKIP_WITHOUT_PYTHON3()                          \
  do {                                                  \
    if (!HavePython3()) {                               \
      GTEST_SKIP() << "python3 not available";          \
    }                                                   \
  } while (0)

TEST(LockOrderLintTest, SelfTestRejectsSeededCycle) {
  SKIP_WITHOUT_PYTHON3();
  EXPECT_EQ(RunTool("tools/check_lock_order.py --self-test"), 0);
}

TEST(LockOrderLintTest, CommittedTreeHasNoCycles) {
  SKIP_WITHOUT_PYTHON3();
  EXPECT_EQ(RunTool("tools/check_lock_order.py --root " +
                    std::string(SVR_SOURCE_DIR)),
            0);
}

TEST(BenchJsonCheckerTest, SelfTestPasses) {
  SKIP_WITHOUT_PYTHON3();
  EXPECT_EQ(RunTool("tools/check_bench_json.py --self-test"), 0);
}

}  // namespace
