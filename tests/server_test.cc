// Serving front end tests (docs/serving.md):
//  - Protocol codec: every request/response type round-trips through
//    encode/decode; decoders reject trailing bytes.
//  - Frame discipline: truncated streams report kNeedMore (never a
//    partial decode), any single bit flip and oversized length fields
//    report kCorrupt — the WAL's either-bit-exact-or-provably-corrupt
//    property applied to the network.
//  - End to end: a real server on an ephemeral port, N concurrent
//    clients interleaving DML and Search, answers checked against the
//    engine queried directly (the in-process oracle).
//  - Admission control: with thresholds forced low the server sheds with
//    Status::Code::kOverloaded and counts `server.rejected`.
//  - HTTP: GET /metrics on the serving port returns the Prometheus dump.
//  (A TSan target in ci.sh.)

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/concurrent_driver.h"

namespace svr {
namespace {

using relational::Value;
using server::AppendMessage;
using server::FrameParse;
using server::MessageType;
using server::ParseFrame;
using server::Request;
using server::Response;
using server::SvrClient;
using server::SvrServer;

// --- protocol codec ----------------------------------------------------

Request RoundTripRequest(const Request& in) {
  std::string payload;
  EncodeRequest(in, &payload);
  Request out;
  Status st = DecodeRequest(Slice(payload), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

Response RoundTripResponse(const Response& in) {
  std::string payload;
  EncodeResponse(in, &payload);
  Response out;
  Status st = DecodeResponse(Slice(payload), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(ProtocolTest, SearchRequestRoundTrip) {
  Request req;
  req.type = MessageType::kSearch;
  req.request_id = 77;
  req.keywords = "alpha beta gamma";
  req.k = 25;
  req.conjunctive = false;
  const Request got = RoundTripRequest(req);
  EXPECT_EQ(got.type, MessageType::kSearch);
  EXPECT_EQ(got.request_id, 77u);
  EXPECT_EQ(got.keywords, "alpha beta gamma");
  EXPECT_EQ(got.k, 25u);
  EXPECT_FALSE(got.conjunctive);
}

TEST(ProtocolTest, DmlRequestsRoundTrip) {
  Request ins;
  ins.type = MessageType::kInsert;
  ins.request_id = 1;
  ins.table = "docs";
  ins.row = {Value::Int(42), Value::String("hello world")};
  Request got = RoundTripRequest(ins);
  EXPECT_EQ(got.type, MessageType::kInsert);
  EXPECT_EQ(got.table, "docs");
  ASSERT_EQ(got.row.size(), 2u);
  EXPECT_EQ(got.row[0].as_int(), 42);
  EXPECT_EQ(got.row[1].as_string(), "hello world");

  Request upd = ins;
  upd.type = MessageType::kUpdate;
  upd.row = {Value::Int(7), Value::Double(3.25)};
  got = RoundTripRequest(upd);
  EXPECT_EQ(got.type, MessageType::kUpdate);
  ASSERT_EQ(got.row.size(), 2u);
  EXPECT_EQ(got.row[1].as_double(), 3.25);

  Request del;
  del.type = MessageType::kDelete;
  del.request_id = 3;
  del.table = "docs";
  del.pk = -9000;  // zigzag must keep negatives intact
  got = RoundTripRequest(del);
  EXPECT_EQ(got.type, MessageType::kDelete);
  EXPECT_EQ(got.pk, -9000);
}

TEST(ProtocolTest, PingAndMetricsRequestsRoundTrip) {
  Request ping;
  ping.type = MessageType::kPing;
  ping.request_id = 5;
  EXPECT_EQ(RoundTripRequest(ping).type, MessageType::kPing);

  Request metrics;
  metrics.type = MessageType::kMetrics;
  metrics.request_id = 6;
  metrics.format = telemetry::DumpFormat::kJson;
  const Request got = RoundTripRequest(metrics);
  EXPECT_EQ(got.type, MessageType::kMetrics);
  EXPECT_EQ(got.format, telemetry::DumpFormat::kJson);
}

TEST(ProtocolTest, SearchResponseRoundTrip) {
  Response resp;
  resp.request_id = 99;
  resp.request_type = MessageType::kSearch;
  resp.code = Status::Code::kOk;
  resp.watermark = 123456789;
  core::ScoredRow a;
  a.pk = 17;
  a.score = 250.5;
  a.row = {Value::Int(17), Value::String("doc text")};
  core::ScoredRow b;
  b.pk = -3;
  b.score = 0.125;
  resp.rows = {a, b};
  const Response got = RoundTripResponse(resp);
  EXPECT_EQ(got.request_id, 99u);
  EXPECT_EQ(got.request_type, MessageType::kSearch);
  EXPECT_EQ(got.code, Status::Code::kOk);
  EXPECT_EQ(got.watermark, 123456789u);
  ASSERT_EQ(got.rows.size(), 2u);
  EXPECT_EQ(got.rows[0].pk, 17);
  EXPECT_EQ(got.rows[0].score, 250.5);
  ASSERT_EQ(got.rows[0].row.size(), 2u);
  EXPECT_EQ(got.rows[0].row[1].as_string(), "doc text");
  EXPECT_EQ(got.rows[1].pk, -3);
  EXPECT_TRUE(got.rows[1].row.empty());
}

TEST(ProtocolTest, ErrorResponseRoundTripsCodeAndMessage) {
  Response resp;
  resp.request_id = 11;
  resp.request_type = MessageType::kInsert;
  resp.code = Status::Code::kOverloaded;
  resp.message = "load shed";
  const Response got = RoundTripResponse(resp);
  EXPECT_EQ(got.code, Status::Code::kOverloaded);
  EXPECT_EQ(got.message, "load shed");
  EXPECT_TRUE(got.ToStatus().IsOverloaded());
}

TEST(ProtocolTest, DecodeRejectsTrailingBytes) {
  Request req;
  req.type = MessageType::kPing;
  req.request_id = 1;
  std::string payload;
  EncodeRequest(req, &payload);
  payload.push_back('\x00');
  Request out;
  EXPECT_TRUE(DecodeRequest(Slice(payload), &out).IsCorruption());
}

// --- frame discipline --------------------------------------------------

TEST(FrameTest, EveryTruncationReportsNeedMore) {
  std::string framed;
  AppendMessage(&framed, "some payload bytes");
  for (size_t n = 0; n < framed.size(); ++n) {
    size_t frame_bytes = 0;
    Slice payload;
    Status err;
    EXPECT_EQ(ParseFrame(Slice(framed.data(), n), &frame_bytes, &payload,
                         &err),
              FrameParse::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  size_t frame_bytes = 0;
  Slice payload;
  Status err;
  ASSERT_EQ(ParseFrame(Slice(framed), &frame_bytes, &payload, &err),
            FrameParse::kFrame);
  EXPECT_EQ(frame_bytes, framed.size());
  EXPECT_EQ(payload.ToString(), "some payload bytes");
}

TEST(FrameTest, AnySingleBitFlipIsCorrupt) {
  std::string framed;
  AppendMessage(&framed, "group commit");
  for (size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = framed;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      size_t frame_bytes = 0;
      Slice payload;
      Status err;
      const FrameParse r =
          ParseFrame(Slice(bad), &frame_bytes, &payload, &err);
      // Flips in the length field may also leave the parser waiting for
      // a longer frame; what must never happen is a clean kFrame.
      EXPECT_NE(r, FrameParse::kFrame)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(FrameTest, OversizedLengthIsCorruptNotBuffered) {
  // A stream positioned on garbage must be rejected from the length
  // field alone — not after buffering gigabytes waiting for a CRC.
  std::string bad;
  const uint32_t huge = server::kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) bad.push_back(static_cast<char>(huge >> (8 * i)));
  bad.append(4, '\x00');
  size_t frame_bytes = 0;
  Slice payload;
  Status err;
  EXPECT_EQ(ParseFrame(Slice(bad), &frame_bytes, &payload, &err),
            FrameParse::kCorrupt);
  EXPECT_TRUE(err.IsCorruption());
}

TEST(FrameTest, BackToBackFramesCutCleanly) {
  std::string stream;
  AppendMessage(&stream, "first");
  AppendMessage(&stream, "second");
  size_t frame_bytes = 0;
  Slice payload;
  Status err;
  ASSERT_EQ(ParseFrame(Slice(stream), &frame_bytes, &payload, &err),
            FrameParse::kFrame);
  EXPECT_EQ(payload.ToString(), "first");
  const Slice rest(stream.data() + frame_bytes,
                   stream.size() - frame_bytes);
  ASSERT_EQ(ParseFrame(rest, &frame_bytes, &payload, &err),
            FrameParse::kFrame);
  EXPECT_EQ(payload.ToString(), "second");
}

// --- end to end --------------------------------------------------------

workload::ConcurrentChurnConfig SmallCorpus() {
  workload::ConcurrentChurnConfig c;
  c.initial_docs = 600;
  c.vocab = 400;
  c.terms_per_doc = 12;
  c.seed = 2005;
  return c;
}

struct LiveServer {
  std::unique_ptr<core::ShardedSvrEngine> engine;
  std::unique_ptr<SvrServer> server;
  LiveServer() = default;
  LiveServer(LiveServer&&) = default;
  LiveServer& operator=(LiveServer&&) = default;
  ~LiveServer() {
    if (server != nullptr) server->Stop();
    if (engine != nullptr) engine->Stop();
  }
};

LiveServer StartLiveServer(const server::ServerOptions& opt,
                           uint32_t num_shards = 2) {
  LiveServer live;
  core::ShardedSvrEngineOptions eng_opt;
  eng_opt.num_shards = num_shards;
  eng_opt.shard.telemetry.enabled = true;
  auto engine_r = workload::SetupShardedChurnEngine(eng_opt, SmallCorpus());
  EXPECT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  if (!engine_r.ok()) return live;
  live.engine = std::move(engine_r).value();
  auto server_r = SvrServer::Start(live.engine.get(), opt);
  EXPECT_TRUE(server_r.ok()) << server_r.status().ToString();
  if (server_r.ok()) live.server = std::move(server_r).value();
  return live;
}

TEST(ServerTest, PingSearchAndMetricsOverTheWire) {
  LiveServer live = StartLiveServer(server::ServerOptions{});
  ASSERT_NE(live.server, nullptr);
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok()) << client_r.status().ToString();
  auto& client = client_r.value();

  ASSERT_TRUE(client->Ping().ok());

  auto reply_r = client->Search("t1 t2", 10, true);
  ASSERT_TRUE(reply_r.ok()) << reply_r.status().ToString();
  const auto& reply = reply_r.value();
  EXPECT_GT(reply.watermark, 0u) << "pinned MVCC watermark travels back";

  // Oracle: the engine queried directly must agree result-for-result
  // (no writes are racing, so the snapshot is stable).
  auto direct = live.engine->Search("t1 t2", 10, true);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(reply.rows.size(), direct.value().size());
  for (size_t i = 0; i < reply.rows.size(); ++i) {
    EXPECT_EQ(reply.rows[i].pk, direct.value()[i].pk);
    EXPECT_EQ(reply.rows[i].score, direct.value()[i].score);
  }

  auto metrics_r = client->Metrics(telemetry::DumpFormat::kPrometheus);
  ASSERT_TRUE(metrics_r.ok());
  EXPECT_NE(metrics_r.value().find("svr_server_requests"),
            std::string::npos);
}

TEST(ServerTest, DmlOverTheWireIsVisibleToSearch) {
  LiveServer live = StartLiveServer(server::ServerOptions{});
  ASSERT_NE(live.server, nullptr);
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok());
  auto& client = client_r.value();

  // A fresh document with a vocabulary no synthetic doc uses, and a
  // score that dominates.
  const int64_t pk = 100000;
  ASSERT_TRUE(client
                  ->Insert("docs", {Value::Int(pk),
                                    Value::String("zebrafish zebrafish")})
                  .ok());
  ASSERT_TRUE(
      client->Insert("scores", {Value::Int(pk), Value::Double(5.0)}).ok());
  auto reply = client->Search("zebrafish", 5, true);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply.value().rows.size(), 1u);
  EXPECT_EQ(reply.value().rows[0].pk, pk);

  ASSERT_TRUE(client->Delete("docs", pk).ok());
  reply = client->Search("zebrafish", 5, true);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().rows.empty()) << "delete must be visible";

  // Errors travel back as statuses, not dropped connections.
  EXPECT_FALSE(client->Insert("no_such_table", {Value::Int(1)}).ok());
  EXPECT_TRUE(client->Ping().ok()) << "connection survives an error";
}

TEST(ServerTest, ConcurrentClientsMatchDirectEngineAnswers) {
  server::ServerOptions opt;
  opt.num_workers = 4;
  LiveServer live = StartLiveServer(opt);
  ASSERT_NE(live.server, nullptr);

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
      if (!client_r.ok()) {
        ++failures;
        return;
      }
      auto& client = client_r.value();
      for (int i = 0; i < kOpsPerClient; ++i) {
        // Writers churn disjoint fresh keys; everyone searches.
        const int64_t pk = 200000 + c * kOpsPerClient + i;
        if (!client
                 ->Insert("docs",
                          {Value::Int(pk), Value::String("t1 t2 t3")})
                 .ok() ||
            !client
                 ->Insert("scores", {Value::Int(pk), Value::Double(1.0)})
                 .ok()) {
          ++failures;
          return;
        }
        auto reply = client->Search("t1 t2", 10, true);
        if (!reply.ok() && !reply.status().IsOverloaded()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: the wire answer equals the direct answer.
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok());
  auto reply = client_r.value()->Search("t1 t2", 20, true);
  auto direct = live.engine->Search("t1 t2", 20, true);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(reply.value().rows.size(), direct.value().size());
  for (size_t i = 0; i < direct.value().size(); ++i) {
    EXPECT_EQ(reply.value().rows[i].pk, direct.value()[i].pk);
    EXPECT_EQ(reply.value().rows[i].score, direct.value()[i].score);
  }

  const auto stats = live.server->GetStats();
  EXPECT_GE(stats.requests, static_cast<uint64_t>(kClients) *
                                kOpsPerClient * 3);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerTest, CorruptFrameClosesConnectionAndCountsIt) {
  LiveServer live = StartLiveServer(server::ServerOptions{});
  ASSERT_NE(live.server, nullptr);
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok());
  auto& client = client_r.value();

  std::string framed;
  {
    Request req;
    req.type = MessageType::kPing;
    req.request_id = 1;
    std::string payload;
    EncodeRequest(req, &payload);
    AppendMessage(&framed, payload);
  }
  framed.back() = static_cast<char>(framed.back() ^ 0x01);
  ASSERT_TRUE(client->SendRaw(Slice(framed)).ok());
  // The server must close, not answer.
  auto resp = client->ReadResponse();
  EXPECT_FALSE(resp.ok());

  // Give the event loop a beat to record the error.
  for (int i = 0; i < 100; ++i) {
    if (live.server->GetStats().protocol_errors > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(live.server->GetStats().protocol_errors, 1u);

  // And fresh connections still work.
  auto again = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value()->Ping().ok());
}

TEST(ServerTest, AdmissionControlShedsWithOverloadedStatus) {
  server::ServerOptions opt;
  // Force the latency trigger: any request slower than 1us trips it
  // once the window holds a single sample, and the refresh runs on
  // every admit.
  opt.admission.max_p99_us = 1;
  opt.admission.min_window_count = 1;
  opt.admission.refresh_interval_ms = 0;
  LiveServer live = StartLiveServer(opt);
  ASSERT_NE(live.server, nullptr);
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok());
  auto& client = client_r.value();

  bool shed = false;
  for (int i = 0; i < 50 && !shed; ++i) {
    auto reply = client->Search("t1 t2", 10, true);
    if (!reply.ok()) {
      ASSERT_TRUE(reply.status().IsOverloaded())
          << reply.status().ToString();
      shed = true;
    }
  }
  EXPECT_TRUE(shed) << "sub-microsecond p99 ceiling must shed";
  EXPECT_GE(live.server->GetStats().rejected, 1u);

  // Ping is never load-bearing: it must pass while Search sheds.
  EXPECT_TRUE(client->Ping().ok());

  // The shed is visible in the exported metrics too.
  auto metrics = client->Metrics(telemetry::DumpFormat::kPrometheus);
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("svr_server_rejected"),
            std::string::npos);
}

// Raw HTTP GET over a fresh socket; returns everything the server sent
// before closing.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

TEST(ServerTest, HttpMetricsOnTheSamePort) {
  LiveServer live = StartLiveServer(server::ServerOptions{});
  ASSERT_NE(live.server, nullptr);

  const std::string prom = HttpGet(live.server->port(), "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos) << prom;
  EXPECT_NE(prom.find("svr_server_requests"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos)
      << "Prometheus exposition format";

  const std::string json =
      HttpGet(live.server->port(), "/metrics?format=json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"server.requests\""), std::string::npos);

  const std::string missing = HttpGet(live.server->port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // HTTP traffic must not disturb binary clients on the same port.
  auto client = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
}

TEST(ServerTest, StopIsIdempotentAndDropsClients) {
  LiveServer live = StartLiveServer(server::ServerOptions{});
  ASSERT_NE(live.server, nullptr);
  auto client_r = SvrClient::Connect("127.0.0.1", live.server->port());
  ASSERT_TRUE(client_r.ok());
  ASSERT_TRUE(client_r.value()->Ping().ok());

  live.server->Stop();
  live.server->Stop();  // idempotent

  // The open connection is gone.
  EXPECT_FALSE(client_r.value()->Ping().ok());
  // And the port no longer accepts.
  auto again = SvrClient::Connect("127.0.0.1", live.server->port());
  if (again.ok()) {
    EXPECT_FALSE(again.value()->Ping().ok());
  }
}

}  // namespace
}  // namespace svr
