#include <gtest/gtest.h>

#include <memory>

#include "core/svr_engine.h"

namespace svr::core {
namespace {

using relational::AggFunction;
using relational::AggregateKind;
using relational::Row;
using relational::Schema;
using relational::ScoreComponentSpec;
using relational::Value;
using relational::ValueType;

// Rebuilds the paper's Figure 1 scenario: an Internet-Archive-style movie
// database where keyword results are ranked by structured values.
class EngineTest : public ::testing::TestWithParam<index::Method> {
 protected:
  void SetUp() override {
    SvrEngineOptions opt;
    opt.method = GetParam();
    opt.index_options.chunk.chunking.chunk_ratio = 2.0;
    opt.index_options.chunk.chunking.min_chunk_size = 1;
    opt.index_options.score_threshold.threshold_ratio = 2.0;
    auto e = SvrEngine::Open(opt);
    ASSERT_TRUE(e.ok());
    engine_ = std::move(e).value();

    ASSERT_TRUE(engine_
                    ->CreateTable("Movies", Schema({{"mID", ValueType::kInt64},
                                                    {"desc", ValueType::kString}},
                                                   0))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("Reviews",
                                  Schema({{"rID", ValueType::kInt64},
                                          {"mID", ValueType::kInt64},
                                          {"rating", ValueType::kDouble}},
                                         0))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("Statistics",
                                  Schema({{"mID", ValueType::kInt64},
                                          {"nVisit", ValueType::kInt64},
                                          {"nDownload", ValueType::kInt64}},
                                         0))
                    .ok());

    // Two movies mentioning "golden gate" (the paper's running example).
    ASSERT_TRUE(Insert("Movies", {Value::Int(0),
                                  Value::String(
                                      "Amateur film about the golden gate "
                                      "bridge in fog")}));
    ASSERT_TRUE(Insert("Movies", {Value::Int(1),
                                  Value::String(
                                      "American Thrift classic crossing the "
                                      "golden gate by tram")}));
    ASSERT_TRUE(Insert("Movies", {Value::Int(2),
                                  Value::String(
                                      "Desert documentary with no bridges "
                                      "at all")}));

    ASSERT_TRUE(engine_
                    ->CreateTextIndex(
                        "Movies", "desc",
                        {{"S1", "Reviews", "mID", "rating",
                          AggregateKind::kAvg},
                         {"S2", "Statistics", "mID", "nVisit",
                          AggregateKind::kValue},
                         {"S3", "Statistics", "mID", "nDownload",
                          AggregateKind::kValue}},
                        AggFunction::WeightedSum({100, 0.5, 1}))
                    .ok());
  }

  bool Insert(const std::string& t, Row row) {
    return engine_->Insert(t, row).ok();
  }

  std::unique_ptr<SvrEngine> engine_;
};

TEST_P(EngineTest, StructuredValuesDriveRanking) {
  // "American Thrift" gets better ratings/visits/downloads.
  ASSERT_TRUE(Insert("Reviews",
                     {Value::Int(100), Value::Int(1), Value::Double(5.0)}));
  ASSERT_TRUE(Insert("Statistics",
                     {Value::Int(1), Value::Int(5000), Value::Int(1200)}));
  ASSERT_TRUE(Insert("Reviews",
                     {Value::Int(101), Value::Int(0), Value::Double(2.0)}));

  auto r = engine_->Search("golden gate", 10);
  ASSERT_TRUE(r.ok());
  const auto& hits = r.value();
  ASSERT_EQ(hits.size(), 2u);  // movie 2 lacks the keywords
  EXPECT_EQ(hits[0].pk, 1);    // the popular movie ranks first
  EXPECT_EQ(hits[1].pk, 0);
  EXPECT_GT(hits[0].score, hits[1].score);
  // Joined row data comes back with the hit.
  EXPECT_NE(hits[0].row[1].as_string().find("American Thrift"),
            std::string::npos);
}

TEST_P(EngineTest, FlashCrowdReordersResults) {
  ASSERT_TRUE(Insert("Statistics",
                     {Value::Int(1), Value::Int(10), Value::Int(0)}));
  ASSERT_TRUE(Insert("Statistics",
                     {Value::Int(0), Value::Int(5), Value::Int(0)}));
  auto before = engine_->Search("golden gate", 1);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value()[0].pk, 1);

  // Movie 0 suddenly goes viral: visits explode.
  ASSERT_TRUE(engine_
                  ->Update("Statistics", {Value::Int(0), Value::Int(900000),
                                          Value::Int(0)})
                  .ok());
  auto after = engine_->Search("golden gate", 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()[0].pk, 0);  // the latest score wins immediately
}

TEST_P(EngineTest, UnknownKeywordsBehave) {
  auto conj = engine_->Search("golden unicorn", 5, /*conjunctive=*/true);
  ASSERT_TRUE(conj.ok());
  EXPECT_TRUE(conj.value().empty());
  auto disj = engine_->Search("golden unicorn", 5, /*conjunctive=*/false);
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj.value().size(), 2u);  // "golden" still matches
}

TEST_P(EngineTest, InsertedDocumentIsSearchable) {
  ASSERT_TRUE(Insert("Movies", {Value::Int(3),
                                Value::String("another golden gate story")}));
  ASSERT_TRUE(Insert("Reviews",
                     {Value::Int(102), Value::Int(3), Value::Double(4.0)}));
  auto r = engine_->Search("golden gate", 10);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& h : r.value()) found = found || h.pk == 3;
  EXPECT_TRUE(found);
}

TEST_P(EngineTest, DeletedDocumentDisappears) {
  auto before = engine_->Search("golden gate", 10);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().size(), 2u);
  ASSERT_TRUE(engine_->Delete("Movies", 0).ok());
  auto after = engine_->Search("golden gate", 10);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), 1u);
  EXPECT_EQ(after.value()[0].pk, 1);
}

TEST_P(EngineTest, ContentUpdateChangesMatching) {
  // Rewrite movie 2's description to mention the bridge.
  ASSERT_TRUE(engine_
                  ->Update("Movies", {Value::Int(2),
                                      Value::String(
                                          "recut with golden gate shots")})
                  .ok());
  auto r = engine_->Search("golden gate", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
}

TEST_P(EngineTest, NonDensePkRejected) {
  EXPECT_FALSE(Insert("Movies", {Value::Int(17),
                                 Value::String("gap in the ids")}));
}

TEST_P(EngineTest, RepeatedQueryKeywordsAreDeduped) {
  ASSERT_TRUE(Insert("Reviews",
                     {Value::Int(100), Value::Int(1), Value::Double(5.0)}));
  auto plain = engine_->Search("golden gate", 10);
  auto doubled = engine_->Search("golden golden gate gate golden", 10);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(doubled.ok());
  ASSERT_EQ(plain.value().size(), doubled.value().size());
  for (size_t i = 0; i < plain.value().size(); ++i) {
    EXPECT_EQ(plain.value()[i].pk, doubled.value()[i].pk) << i;
    // Identical scores: duplicate terms must not double-count term
    // scores or rerun the same stream.
    EXPECT_DOUBLE_EQ(plain.value()[i].score, doubled.value()[i].score) << i;
  }
}

TEST_P(EngineTest, AutoMergePolicyKeepsResultsCorrect) {
  // Re-open the engine with the auto-merge policy on a tiny interval and
  // confirm sustained churn keeps answers identical while merges run.
  SvrEngineOptions opt;
  opt.method = GetParam();
  opt.index_options.chunk.chunking.chunk_ratio = 2.0;
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.index_options.score_threshold.threshold_ratio = 2.0;
  opt.merge_policy.enabled = true;
  opt.merge_policy.short_ratio = 0.01;
  opt.merge_policy.min_short_postings = 1;
  opt.merge_policy.check_interval = 4;
  auto e = SvrEngine::Open(opt);
  ASSERT_TRUE(e.ok());
  auto engine = std::move(e).value();
  ASSERT_TRUE(engine
                  ->CreateTable("Movies",
                                Schema({{"mID", ValueType::kInt64},
                                        {"desc", ValueType::kString}},
                                       0))
                  .ok());
  ASSERT_TRUE(engine
                  ->CreateTable("Statistics",
                                Schema({{"mID", ValueType::kInt64},
                                        {"nVisit", ValueType::kInt64},
                                        {"nDownload", ValueType::kInt64}},
                                       0))
                  .ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine
                    ->Insert("Movies",
                             {Value::Int(i),
                              Value::String("golden gate movie number " +
                                            std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(engine
                  ->CreateTextIndex(
                      "Movies", "desc",
                      {{"S2", "Statistics", "mID", "nVisit",
                        AggregateKind::kValue}},
                      AggFunction::WeightedSum({1.0}))
                  .ok());
  // Fresh documents after the index is built land in the short lists of
  // every method (the ID family only churns through inserts).
  for (int i = 30; i < 45; ++i) {
    ASSERT_TRUE(engine
                    ->Insert("Movies",
                             {Value::Int(i),
                              Value::String("late golden gate arrival " +
                                            std::to_string(i))})
                    .ok());
  }
  // Churn: visits climb, repeatedly reordering the ranking; the policy
  // fires every 4 writes.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine
                    ->Insert("Statistics", {Value::Int(i), Value::Int(0),
                                            Value::Int(0)})
                    .ok());
  }
  for (int round = 1; round <= 20; ++round) {
    for (int i = 0; i < 30; i += 3) {
      ASSERT_TRUE(engine
                      ->Update("Statistics",
                               {Value::Int(i),
                                Value::Int((i + 1) * round * 10),
                                Value::Int(0)})
                      .ok());
    }
  }
  auto r = engine->Search("golden gate", 5);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.value().empty());
  // Highest visit count wins under WeightedSum({1.0}).
  EXPECT_EQ(r.value()[0].pk, 27);
  EXPECT_GT(engine->text_index()->stats().term_merges, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, EngineTest,
    ::testing::Values(index::Method::kId, index::Method::kScoreThreshold,
                      index::Method::kChunk),
    [](const ::testing::TestParamInfo<index::Method>& info) {
      std::string n = index::MethodName(info.param);
      std::string out;
      for (char c : n) {
        if (c != '-') out.push_back(c);
      }
      return out;
    });

}  // namespace
}  // namespace svr::core
