#include <gtest/gtest.h>

#include <memory>

#include "relational/database.h"
#include "relational/schema.h"
#include "relational/score_function.h"
#include "relational/score_table.h"
#include "relational/score_view.h"
#include "relational/table.h"
#include "relational/value.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace svr::relational {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(-7).as_int(), -7);
  EXPECT_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("hi").as_string(), "hi");
}

TEST(ValueTest, ToNumberCoercion) {
  EXPECT_EQ(Value::Int(3).ToNumber(), 3.0);
  EXPECT_EQ(Value::Double(4.5).ToNumber(), 4.5);
  EXPECT_EQ(Value::Null().ToNumber(), 0.0);
  EXPECT_EQ(Value::String("x").ToNumber(), 0.0);
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  const Value vals[] = {Value::Null(), Value::Int(-123456789),
                        Value::Double(87.13), Value::String("golden gate"),
                        Value::String("")};
  std::string buf;
  for (const Value& v : vals) EncodeValue(&buf, v);
  Slice in(buf);
  for (const Value& v : vals) {
    Value out;
    ASSERT_TRUE(DecodeValue(&in, &out).ok());
    EXPECT_TRUE(out == v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(ValueTest, DecodeRejectsGarbage) {
  Slice empty("", 0);
  Value v;
  EXPECT_TRUE(DecodeValue(&empty, &v).IsCorruption());
  std::string bad = "\xff";
  Slice in(bad);
  EXPECT_FALSE(DecodeValue(&in, &v).ok());
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"id", ValueType::kInt64}, {"name", ValueType::kString}}, 0);
  EXPECT_EQ(s.FindColumn("id"), 0);
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(1024);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 512);
    Schema schema({{"id", ValueType::kInt64},
                   {"title", ValueType::kString},
                   {"rating", ValueType::kDouble}},
                  0);
    auto t = Table::Create("movies", schema, pool_.get());
    ASSERT_TRUE(t.ok());
    table_ = std::move(t).value();
  }

  Row MakeRow(int64_t id, const std::string& title, double rating) {
    return {Value::Int(id), Value::String(title), Value::Double(rating)};
  }

  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertGet) {
  ASSERT_TRUE(table_->Insert(MakeRow(1, "American Thrift", 4.5)).ok());
  Row row;
  ASSERT_TRUE(table_->Get(1, &row).ok());
  EXPECT_EQ(row[1].as_string(), "American Thrift");
  EXPECT_EQ(row[2].as_double(), 4.5);
}

TEST_F(TableTest, DuplicatePkRejected) {
  ASSERT_TRUE(table_->Insert(MakeRow(1, "a", 1)).ok());
  EXPECT_TRUE(table_->Insert(MakeRow(1, "b", 2)).IsAlreadyExists());
}

TEST_F(TableTest, UpdateRequiresExisting) {
  EXPECT_TRUE(table_->Update(MakeRow(5, "x", 0)).IsNotFound());
  ASSERT_TRUE(table_->Insert(MakeRow(5, "x", 0)).ok());
  ASSERT_TRUE(table_->Update(MakeRow(5, "y", 3)).ok());
  Row row;
  ASSERT_TRUE(table_->Get(5, &row).ok());
  EXPECT_EQ(row[1].as_string(), "y");
}

TEST_F(TableTest, DeleteRemoves) {
  ASSERT_TRUE(table_->Insert(MakeRow(2, "gone", 0)).ok());
  ASSERT_TRUE(table_->Delete(2).ok());
  Row row;
  EXPECT_TRUE(table_->Get(2, &row).IsNotFound());
  EXPECT_TRUE(table_->Delete(2).IsNotFound());
}

TEST_F(TableTest, ScanInPkOrderIncludingNegatives) {
  ASSERT_TRUE(table_->Insert(MakeRow(10, "c", 0)).ok());
  ASSERT_TRUE(table_->Insert(MakeRow(-5, "a", 0)).ok());
  ASSERT_TRUE(table_->Insert(MakeRow(0, "b", 0)).ok());
  std::vector<int64_t> pks;
  ASSERT_TRUE(table_->Scan([&](const Row& r) {
    pks.push_back(r[0].as_int());
    return true;
  }).ok());
  ASSERT_EQ(pks.size(), 3u);
  EXPECT_EQ(pks[0], -5);
  EXPECT_EQ(pks[1], 0);
  EXPECT_EQ(pks[2], 10);
}

TEST_F(TableTest, PkMustBeInt) {
  Schema bad({{"id", ValueType::kString}}, 0);
  EXPECT_FALSE(Table::Create("bad", bad, pool_.get()).ok());
}

// --- score table ---------------------------------------------------------

class ScoreTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(1024);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 512);
    auto t = ScoreTable::Create(pool_.get());
    ASSERT_TRUE(t.ok());
    scores_ = std::move(t).value();
  }
  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<ScoreTable> scores_;
};

TEST_F(ScoreTableTest, SetGet) {
  ASSERT_TRUE(scores_->Set(7, 87.13).ok());
  double s;
  ASSERT_TRUE(scores_->Get(7, &s).ok());
  EXPECT_EQ(s, 87.13);
  EXPECT_TRUE(scores_->Get(8, &s).IsNotFound());
}

TEST_F(ScoreTableTest, UpdateOverwrites) {
  ASSERT_TRUE(scores_->Set(7, 87.13).ok());
  ASSERT_TRUE(scores_->Set(7, 124.2).ok());
  double s;
  ASSERT_TRUE(scores_->Get(7, &s).ok());
  EXPECT_EQ(s, 124.2);
  EXPECT_EQ(scores_->size(), 1u);
}

TEST_F(ScoreTableTest, DeletedFlag) {
  ASSERT_TRUE(scores_->Set(7, 10).ok());
  ASSERT_TRUE(scores_->MarkDeleted(7).ok());
  double s;
  bool deleted;
  ASSERT_TRUE(scores_->GetWithDeleted(7, &s, &deleted).ok());
  EXPECT_TRUE(deleted);
  EXPECT_EQ(s, 10);
  // Re-setting a score revives the doc.
  ASSERT_TRUE(scores_->Set(7, 20).ok());
  ASSERT_TRUE(scores_->GetWithDeleted(7, &s, &deleted).ok());
  EXPECT_FALSE(deleted);
}

TEST_F(ScoreTableTest, ScanOrdered) {
  for (DocId d : {5u, 1u, 9u}) ASSERT_TRUE(scores_->Set(d, d * 1.0).ok());
  std::vector<DocId> seen;
  ASSERT_TRUE(scores_->Scan([&](DocId d, double, bool) {
    seen.push_back(d);
    return true;
  }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen[0] == 1 && seen[1] == 5 && seen[2] == 9);
}

// --- database + score view (the §3 machinery) ------------------------------

class ScoreViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(4096);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 1024);
    db_ = std::make_unique<Database>(pool_.get());

    ASSERT_TRUE(db_->CreateTable("Movies",
                                 Schema({{"mID", ValueType::kInt64},
                                         {"desc", ValueType::kString}},
                                        0))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("Reviews",
                                 Schema({{"rID", ValueType::kInt64},
                                         {"mID", ValueType::kInt64},
                                         {"rating", ValueType::kDouble}},
                                        0))
                    .ok());
    ASSERT_TRUE(db_->CreateTable("Statistics",
                                 Schema({{"mID", ValueType::kInt64},
                                         {"nVisit", ValueType::kInt64},
                                         {"nDownload", ValueType::kInt64}},
                                        0))
                    .ok());

    auto st = ScoreTable::Create(pool_.get());
    ASSERT_TRUE(st.ok());
    scores_ = std::move(st).value();

    // The paper's §3.1 example: S1 = avg rating, S2 = visits,
    // S3 = downloads; Agg = s1*100 + s2/2 + s3.
    std::vector<ScoreComponentSpec> specs = {
        {"S1", "Reviews", "mID", "rating", AggregateKind::kAvg},
        {"S2", "Statistics", "mID", "nVisit", AggregateKind::kValue},
        {"S3", "Statistics", "mID", "nDownload", AggregateKind::kValue},
    };
    // Two kValue components over different columns of the same table need
    // separate specs — supported.
    view_ = std::make_unique<ScoreView>(
        db_.get(), "Movies", specs,
        AggFunction::WeightedSum({100, 0.5, 1}), scores_.get());
    db_->AddObserver(view_.get());
  }

  void InsertBase() {
    ASSERT_TRUE(db_->Insert("Movies", {Value::Int(0),
                                       Value::String("golden gate a")})
                    .ok());
    ASSERT_TRUE(db_->Insert("Movies", {Value::Int(1),
                                       Value::String("golden gate b")})
                    .ok());
    ASSERT_TRUE(db_->Insert("Reviews", {Value::Int(100), Value::Int(0),
                                        Value::Double(4.0)})
                    .ok());
    ASSERT_TRUE(db_->Insert("Reviews", {Value::Int(101), Value::Int(0),
                                        Value::Double(5.0)})
                    .ok());
    ASSERT_TRUE(db_->Insert("Statistics",
                            {Value::Int(0), Value::Int(2000),
                             Value::Int(98)})
                    .ok());
    ASSERT_TRUE(view_->last_error().ok());
  }

  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ScoreTable> scores_;
  std::unique_ptr<ScoreView> view_;
};

TEST_F(ScoreViewTest, IncrementalMaintenanceMatchesSpec) {
  InsertBase();
  // avg rating 4.5 * 100 + 2000/2 + 98 = 450 + 1000 + 98 = 1548.
  EXPECT_NEAR(view_->ScoreOf(0), 1548.0, 1e-9);
  // Movie 1 has no component rows at all.
  EXPECT_EQ(view_->ScoreOf(1), 0.0);
}

TEST_F(ScoreViewTest, FullRefreshEqualsIncremental) {
  InsertBase();
  const double incremental = view_->ScoreOf(0);
  ASSERT_TRUE(view_->FullRefresh().ok());
  EXPECT_NEAR(view_->ScoreOf(0), incremental, 1e-9);
  double persisted;
  ASSERT_TRUE(scores_->Get(0, &persisted).ok());
  EXPECT_NEAR(persisted, incremental, 1e-9);
}

TEST_F(ScoreViewTest, UpdatesAdjustAggregates) {
  InsertBase();
  // Change a rating: avg becomes (2+5)/2 = 3.5.
  ASSERT_TRUE(db_->Update("Reviews", {Value::Int(100), Value::Int(0),
                                      Value::Double(2.0)})
                  .ok());
  EXPECT_NEAR(view_->ScoreOf(0), 350 + 1000 + 98, 1e-9);
  // Bump visits (kValue replaces).
  ASSERT_TRUE(db_->Update("Statistics", {Value::Int(0), Value::Int(3000),
                                         Value::Int(98)})
                  .ok());
  EXPECT_NEAR(view_->ScoreOf(0), 350 + 1500 + 98, 1e-9);
}

TEST_F(ScoreViewTest, DeletesRetractContributions) {
  InsertBase();
  ASSERT_TRUE(db_->Delete("Reviews", 101).ok());
  // Only the 4.0 review remains.
  EXPECT_NEAR(view_->ScoreOf(0), 400 + 1000 + 98, 1e-9);
  ASSERT_TRUE(db_->Delete("Reviews", 100).ok());
  EXPECT_NEAR(view_->ScoreOf(0), 0 + 1000 + 98, 1e-9);
}

TEST_F(ScoreViewTest, HandlerReceivesScoreUpdates) {
  InsertBase();
  std::vector<std::pair<DocId, double>> received;
  view_->SetScoreUpdateHandler([&](DocId d, double s) {
    received.push_back({d, s});
    return Status::OK();
  });
  ASSERT_TRUE(db_->Insert("Reviews", {Value::Int(102), Value::Int(1),
                                      Value::Double(3.0)})
                  .ok());
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_NEAR(received[0].second, 300.0, 1e-9);
}

TEST_F(ScoreViewTest, CountAggregate) {
  auto st2 = ScoreTable::Create(pool_.get());
  ASSERT_TRUE(st2.ok());
  ScoreView popularity(
      db_.get(), "Movies",
      {{"S", "Reviews", "mID", "", AggregateKind::kCount}},
      AggFunction::WeightedSum({1.0}), st2.value().get());
  db_->AddObserver(&popularity);
  InsertBase();
  EXPECT_EQ(popularity.ScoreOf(0), 2.0);
  EXPECT_EQ(popularity.ScoreOf(1), 0.0);
}

TEST_F(ScoreViewTest, CustomAggFunction) {
  auto st2 = ScoreTable::Create(pool_.get());
  ASSERT_TRUE(st2.ok());
  ScoreView v(db_.get(), "Movies",
              {{"S1", "Reviews", "mID", "rating", AggregateKind::kSum}},
              AggFunction::Custom([](const std::vector<double>& s) {
                return s[0] * s[0];
              }),
              st2.value().get());
  db_->AddObserver(&v);
  InsertBase();
  EXPECT_NEAR(v.ScoreOf(0), 81.0, 1e-9);  // (4+5)^2
}

TEST(DatabaseTest, UnknownTableErrors) {
  storage::InMemoryPageStore store(1024);
  storage::BufferPool pool(&store, 64);
  Database db(&pool);
  EXPECT_TRUE(db.Insert("nope", {Value::Int(1)}).IsNotFound());
  EXPECT_TRUE(db.Delete("nope", 1).IsNotFound());
  EXPECT_EQ(db.GetTable("nope"), nullptr);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  storage::InMemoryPageStore store(1024);
  storage::BufferPool pool(&store, 64);
  Database db(&pool);
  Schema s({{"id", ValueType::kInt64}}, 0);
  ASSERT_TRUE(db.CreateTable("t", s).ok());
  EXPECT_TRUE(db.CreateTable("t", s).status().IsAlreadyExists());
}

}  // namespace
}  // namespace svr::relational
