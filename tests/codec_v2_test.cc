// Posting format v2: group-varint block codec, skip headers, cursors.
//
// Covers: raw group-varint round trips, every list format at the
// 127/128/129 block boundaries, SeekTo against a naive reference,
// truncated-input fuzzing (every decode must fail cleanly, never read
// past the buffer), and v1-vs-v2 TopK equivalence for every method that
// owns blob lists.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/block_codec.h"
#include "common/random.h"
#include "fuzz/standalone_driver.h"
#include "index/posting_codec.h"
#include "index/posting_cursor.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "tests/index_test_util.h"

namespace svr::index {
namespace {

// --- group-varint primitives --------------------------------------------

TEST(GroupVarintTest, RoundTripSizes) {
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 127u, 128u, 129u}) {
    std::vector<uint32_t> values(n);
    Random rng(42 + n);
    for (size_t i = 0; i < n; ++i) {
      // Mix of 1..4-byte magnitudes.
      switch (rng.Uniform(4)) {
        case 0: values[i] = static_cast<uint32_t>(rng.Uniform(1 << 8)); break;
        case 1: values[i] = static_cast<uint32_t>(rng.Uniform(1 << 16)); break;
        case 2: values[i] = static_cast<uint32_t>(rng.Uniform(1 << 24)); break;
        default: values[i] = static_cast<uint32_t>(rng.Next()); break;
      }
    }
    std::string buf;
    AppendGroupVarint(values.data(), n, &buf);
    std::vector<uint32_t> decoded(n + 1, 0xDEADBEEF);
    const size_t used =
        DecodeGroupVarint(buf.data(), buf.size(), decoded.data(), n);
    if (n == 0) {
      EXPECT_EQ(used, 0u);
      EXPECT_TRUE(buf.empty());
      continue;
    }
    ASSERT_EQ(used, buf.size()) << "n=" << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(decoded[i], values[i]);
    EXPECT_EQ(decoded[n], 0xDEADBEEFu);  // no overwrite
  }
}

TEST(GroupVarintTest, ExtremeValues) {
  std::vector<uint32_t> values = {0, 0, 0, std::numeric_limits<uint32_t>::max(),
                                  1, 255, 256, 65535, 65536, 0xFFFFFF,
                                  0x1000000, 0xFFFFFFFF};
  std::string buf;
  AppendGroupVarint(values.data(), values.size(), &buf);
  std::vector<uint32_t> decoded(values.size());
  ASSERT_EQ(DecodeGroupVarint(buf.data(), buf.size(), decoded.data(),
                              values.size()),
            buf.size());
  EXPECT_EQ(decoded, values);
}

TEST(GroupVarintTest, TruncationDetected) {
  std::vector<uint32_t> values(130);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i * 11400714819u);  // all widths
  }
  std::string buf;
  AppendGroupVarint(values.data(), values.size(), &buf);
  std::vector<uint32_t> decoded(values.size());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(DecodeGroupVarint(buf.data(), cut, decoded.data(),
                                values.size()),
              0u)
        << "cut=" << cut;
  }
}

// --- list fixtures -------------------------------------------------------

class CodecV2Test : public ::testing::Test {
 protected:
  CodecV2Test() : store_(4096), pool_(&store_, 1 << 16), blobs_(&pool_) {}

  storage::BlobRef Put(const std::string& buf) {
    auto ref = blobs_.Write(buf);
    EXPECT_TRUE(ref.ok());
    return ref.value();
  }

  storage::InMemoryPageStore store_;
  storage::BufferPool pool_;
  storage::BlobStore blobs_;
};

std::vector<IdPosting> MakePostings(size_t n, uint64_t seed,
                                    uint32_t max_gap = 37) {
  std::vector<IdPosting> ps;
  Random rng(seed);
  DocId d = 0;
  for (size_t i = 0; i < n; ++i) {
    d += 1 + rng.Uniform(max_gap);
    ps.push_back({d, static_cast<float>(rng.Uniform(1000)) / 1000.0f});
  }
  return ps;
}

// Block-boundary sizes plus small/empty cases.
const size_t kSizes[] = {0, 1, 2, 127, 128, 129, 255, 256, 257, 1000};

TEST_F(CodecV2Test, IdListRoundTrip) {
  for (size_t n : kSizes) {
    auto ps = MakePostings(n, 7 + n);
    std::vector<DocId> docs;
    for (const auto& p : ps) docs.push_back(p.doc);
    std::string buf;
    EncodeIdList(docs, &buf, PostingFormat::kV2);
    auto ref = Put(buf);
    CursorScratch scratch;
    IdPostingCursor c(blobs_.NewReader(ref), /*with_ts=*/false,
                      PostingFormat::kV2, &scratch);
    ASSERT_TRUE(c.Init().ok()) << n;
    EXPECT_EQ(c.count(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(c.Valid()) << n << " @" << i;
      EXPECT_EQ(c.doc(), docs[i]);
      EXPECT_EQ(c.term_score(), 0.0f);
      ASSERT_TRUE(c.Next().ok());
    }
    EXPECT_FALSE(c.Valid());
  }
}

TEST_F(CodecV2Test, IdTsListRoundTripBothFormats) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    for (size_t n : kSizes) {
      auto ps = MakePostings(n, 13 + n);
      std::string buf;
      EncodeIdTsList(ps, /*with_ts=*/true, &buf, fmt);
      auto ref = Put(buf);
      CursorScratch scratch;
      IdPostingCursor c(blobs_.NewReader(ref), /*with_ts=*/true, fmt,
                        &scratch);
      ASSERT_TRUE(c.Init().ok());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(c.Valid());
        EXPECT_EQ(c.doc(), ps[i].doc);
        EXPECT_EQ(c.term_score(), ps[i].term_score);
        ASSERT_TRUE(c.Next().ok());
      }
      EXPECT_FALSE(c.Valid());
    }
  }
}

TEST_F(CodecV2Test, MaximalDeltas) {
  // Two postings spanning the full 32-bit doc space.
  std::vector<DocId> docs = {0, 0xFFFFFFFEu};
  std::string buf;
  EncodeIdList(docs, &buf, PostingFormat::kV2);
  auto ref = Put(buf);
  CursorScratch scratch;
  IdPostingCursor c(blobs_.NewReader(ref), false, PostingFormat::kV2,
                    &scratch);
  ASSERT_TRUE(c.Init().ok());
  EXPECT_EQ(c.doc(), 0u);
  ASSERT_TRUE(c.Next().ok());
  EXPECT_EQ(c.doc(), 0xFFFFFFFEu);
}

TEST_F(CodecV2Test, IdSeekToMatchesNaiveReference) {
  const size_t n = 1000;
  auto ps = MakePostings(n, 99);
  std::vector<DocId> docs;
  for (const auto& p : ps) docs.push_back(p.doc);
  std::string buf;
  EncodeIdList(docs, &buf, PostingFormat::kV2);
  auto ref = Put(buf);

  Random rng(5);
  // Forward-only seek sequence (cursors are forward iterators).
  std::vector<DocId> targets;
  DocId t = 0;
  while (t < docs.back() + 10) {
    t += 1 + rng.Uniform(200);
    targets.push_back(t);
  }
  CursorScratch scratch;
  IdPostingCursor c(blobs_.NewReader(ref), false, PostingFormat::kV2,
                    &scratch);
  ASSERT_TRUE(c.Init().ok());
  for (DocId target : targets) {
    ASSERT_TRUE(c.SeekTo(target).ok());
    // Naive reference: first doc >= target.
    auto it = std::lower_bound(docs.begin(), docs.end(), target);
    if (it == docs.end()) {
      EXPECT_FALSE(c.Valid()) << "target=" << target;
    } else {
      ASSERT_TRUE(c.Valid()) << "target=" << target;
      EXPECT_EQ(c.doc(), *it) << "target=" << target;
    }
  }
}

TEST_F(CodecV2Test, ScoreListRoundTripAndSeek) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    for (size_t n : kSizes) {
      std::vector<ScorePosting> ps;
      Random rng(17 + n);
      for (size_t i = 0; i < n; ++i) {
        ps.push_back({static_cast<double>(rng.Uniform(1000)),
                      static_cast<DocId>(rng.Uniform(100000))});
      }
      std::sort(ps.begin(), ps.end(),
                [](const ScorePosting& a, const ScorePosting& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.doc < b.doc;
                });
      ps.erase(std::unique(ps.begin(), ps.end(),
                           [](const ScorePosting& a, const ScorePosting& b) {
                             return a.score == b.score && a.doc == b.doc;
                           }),
               ps.end());
      std::string buf;
      EncodeScoreList(ps, &buf, fmt);
      auto ref = Put(buf);
      ScoreCursorScratch scratch;
      ScorePostingCursor c(blobs_.NewReader(ref), fmt, &scratch);
      ASSERT_TRUE(c.Init().ok());
      for (size_t i = 0; i < ps.size(); ++i) {
        ASSERT_TRUE(c.Valid());
        EXPECT_EQ(c.score(), ps[i].score);
        EXPECT_EQ(c.doc(), ps[i].doc);
        ASSERT_TRUE(c.Next().ok());
      }
      EXPECT_FALSE(c.Valid());

      // Forward seeks against the naive reference.
      if (ps.empty()) continue;
      ScorePostingCursor s(blobs_.NewReader(ref), fmt, &scratch);
      ASSERT_TRUE(s.Init().ok());
      auto before = [](const ScorePosting& a, double sc, DocId d) {
        if (a.score != sc) return a.score > sc;
        return a.doc < d;
      };
      size_t naive = 0;
      for (size_t step = 0; step < ps.size(); step += 1 + step / 3) {
        const double tsc = ps[step].score;
        const DocId tdoc = ps[step].doc;
        ASSERT_TRUE(s.SeekTo(tsc, tdoc).ok());
        while (naive < ps.size() && before(ps[naive], tsc, tdoc)) ++naive;
        if (naive == ps.size()) {
          EXPECT_FALSE(s.Valid());
        } else {
          ASSERT_TRUE(s.Valid());
          EXPECT_EQ(s.score(), ps[naive].score);
          EXPECT_EQ(s.doc(), ps[naive].doc);
        }
      }
    }
  }
}

std::vector<ChunkGroup> MakeChunkGroups(size_t n_groups, size_t per_group,
                                        uint64_t seed) {
  std::vector<ChunkGroup> groups;
  Random rng(seed);
  for (size_t g = 0; g < n_groups; ++g) {
    ChunkGroup cg;
    cg.cid = static_cast<ChunkId>(n_groups - 1 - g);  // descending
    DocId d = rng.Uniform(50);
    for (size_t i = 0; i < per_group; ++i) {
      d += 1 + rng.Uniform(9);
      cg.postings.push_back(
          {d, static_cast<float>(rng.Uniform(1000)) / 1000.0f});
    }
    groups.push_back(std::move(cg));
  }
  return groups;
}

TEST_F(CodecV2Test, ChunkListRoundTripBothFormats) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    for (bool with_ts : {false, true}) {
      for (size_t per_group : {1u, 127u, 128u, 129u, 300u}) {
        auto groups = MakeChunkGroups(5, per_group, 31 + per_group);
        std::string buf;
        EncodeChunkList(groups, with_ts, &buf, fmt);
        auto ref = Put(buf);
        CursorScratch scratch;
        ChunkPostingCursor c(blobs_.NewReader(ref), with_ts, fmt, &scratch);
        ASSERT_TRUE(c.Init().ok());
        for (const auto& g : groups) {
          ASSERT_TRUE(c.HasGroup());
          EXPECT_EQ(c.cid(), g.cid);
          for (const auto& p : g.postings) {
            ASSERT_TRUE(c.Valid());
            EXPECT_EQ(c.doc(), p.doc);
            if (with_ts) {
              EXPECT_EQ(c.term_score(), p.term_score);
            }
            ASSERT_TRUE(c.Next().ok());
          }
          EXPECT_FALSE(c.Valid());
          ASSERT_TRUE(c.NextGroup().ok());
        }
        EXPECT_FALSE(c.HasGroup());
      }
    }
  }
}

TEST_F(CodecV2Test, ChunkSkipGroupAndSeekInGroup) {
  auto groups = MakeChunkGroups(8, 400, 77);
  std::string buf;
  EncodeChunkList(groups, /*with_ts=*/false, &buf, PostingFormat::kV2);
  auto ref = Put(buf);
  CursorScratch scratch;
  ChunkPostingCursor c(blobs_.NewReader(ref), false, PostingFormat::kV2,
                       &scratch);
  ASSERT_TRUE(c.Init().ok());
  const uint64_t misses_before = pool_.stats().misses;
  size_t g_idx = 0;
  for (const auto& g : groups) {
    ASSERT_TRUE(c.HasGroup());
    if (g_idx % 2 == 0) {
      ASSERT_TRUE(c.SkipGroup().ok());
    } else {
      // Seek through the group with a stride; compare to reference.
      std::vector<DocId> docs;
      for (const auto& p : g.postings) docs.push_back(p.doc);
      DocId t = docs.front();
      while (true) {
        ASSERT_TRUE(c.SeekInGroup(t).ok());
        auto it = std::lower_bound(docs.begin(), docs.end(), t);
        if (it == docs.end()) {
          EXPECT_FALSE(c.Valid());
          break;
        }
        ASSERT_TRUE(c.Valid());
        EXPECT_EQ(c.doc(), *it);
        t = *it + 173;
      }
    }
    ASSERT_TRUE(c.NextGroup().ok());
    ++g_idx;
  }
  EXPECT_FALSE(c.HasGroup());
  // Skipping must not have fetched every page of the blob.
  EXPECT_LT(pool_.stats().misses - misses_before, ref.num_pages);
}

TEST_F(CodecV2Test, FancyListRoundTripBothFormats) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    for (size_t n : kSizes) {
      auto ps = MakePostings(n, 53 + n);
      std::string buf;
      EncodeFancyList(ps, 0.25f, &buf, fmt);
      auto ref = Put(buf);
      std::vector<IdPosting> out;
      float min_ts = -1.0f;
      ASSERT_TRUE(
          DecodeFancyList(blobs_.NewReader(ref), &out, &min_ts, fmt).ok());
      EXPECT_EQ(min_ts, 0.25f);
      ASSERT_EQ(out.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].doc, ps[i].doc);
        EXPECT_EQ(out[i].term_score, ps[i].term_score);
      }
    }
  }
}

// --- truncation fuzzing --------------------------------------------------
//
// Every prefix of a valid encoding must decode to an error (or a clean
// early end), never crash or read out of bounds. Exhaustive over every
// cut point of moderately sized lists, both formats.

template <typename DecodeAll>
void FuzzTruncations(storage::BlobStore* blobs, const std::string& buf,
                     DecodeAll decode_all) {
  for (size_t cut = 0; cut + 1 < buf.size(); cut += 1 + cut / 64) {
    std::string trunc = buf.substr(0, cut);
    auto ref = blobs->Write(trunc);
    ASSERT_TRUE(ref.ok());
    decode_all(ref.value());  // must not crash; status checked inside
    ASSERT_TRUE(blobs->Free(ref.value()).ok());
  }
}

TEST_F(CodecV2Test, TruncatedIdListFuzz) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    auto ps = MakePostings(300, 3);
    std::string buf;
    EncodeIdTsList(ps, true, &buf, fmt);
    FuzzTruncations(&blobs_, buf, [&](storage::BlobRef ref) {
      CursorScratch scratch;
      IdPostingCursor c(blobs_.NewReader(ref), true, fmt, &scratch);
      Status st = c.Init();
      size_t decoded = 0;
      while (st.ok() && c.Valid() && decoded <= ps.size()) {
        ++decoded;
        st = c.Next();
      }
      EXPECT_LE(decoded, ps.size());
    });
  }
}

TEST_F(CodecV2Test, TruncatedChunkListFuzz) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    auto groups = MakeChunkGroups(4, 150, 11);
    std::string buf;
    EncodeChunkList(groups, false, &buf, fmt);
    FuzzTruncations(&blobs_, buf, [&](storage::BlobRef ref) {
      CursorScratch scratch;
      ChunkPostingCursor c(blobs_.NewReader(ref), false, fmt, &scratch);
      Status st = c.Init();
      size_t decoded = 0;
      while (st.ok() && c.HasGroup() && decoded < 10000) {
        if (c.Valid()) {
          ++decoded;
          st = c.Next();
        } else {
          st = c.NextGroup();
        }
      }
    });
    // The v1 reader path must survive the same truncations.
    FuzzTruncations(&blobs_, buf, [&](storage::BlobRef ref) {
      if (fmt != PostingFormat::kV1) return;
      ChunkListReader r(blobs_.NewReader(ref), false);
      Status st = r.Init();
      size_t decoded = 0;
      while (st.ok() && r.HasGroup() && decoded < 10000) {
        if (r.Valid()) {
          ++decoded;
          st = r.Next();
        } else {
          st = r.NextGroup();
        }
      }
    });
  }
}

TEST_F(CodecV2Test, TruncatedScoreListFuzz) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    std::vector<ScorePosting> ps;
    for (size_t i = 0; i < 300; ++i) {
      ps.push_back({3000.0 - static_cast<double>(i), static_cast<DocId>(i)});
    }
    std::string buf;
    EncodeScoreList(ps, &buf, fmt);
    FuzzTruncations(&blobs_, buf, [&](storage::BlobRef ref) {
      ScoreCursorScratch scratch;
      ScorePostingCursor c(blobs_.NewReader(ref), fmt, &scratch);
      Status st = c.Init();
      size_t decoded = 0;
      while (st.ok() && c.Valid() && decoded <= ps.size()) {
        ++decoded;
        st = c.Next();
      }
      EXPECT_LE(decoded, ps.size());
    });
  }
}

TEST_F(CodecV2Test, TruncatedFancyListFuzz) {
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    auto ps = MakePostings(200, 29);
    std::string buf;
    EncodeFancyList(ps, 0.5f, &buf, fmt);
    FuzzTruncations(&blobs_, buf, [&](storage::BlobRef ref) {
      std::vector<IdPosting> out;
      float min_ts;
      Status st = DecodeFancyList(blobs_.NewReader(ref), &out, &min_ts, fmt);
      EXPECT_LE(out.size(), ps.size());
      (void)st;
    });
  }
}

// --- v1 vs v2 end-to-end equivalence ------------------------------------

using test::IndexWorld;
using test::MakeScores;

TEST(FormatEquivalenceTest, TopKIdenticalAcrossFormats) {
  // Every method that owns blob long lists; kScore has no blobs and
  // kScoreThreshold/kChunk families cover both posting kinds.
  const Method methods[] = {Method::kId, Method::kIdTermScore,
                            Method::kScoreThreshold, Method::kChunk,
                            Method::kChunkTermScore};
  text::CorpusParams cp;
  cp.num_docs = 500;
  cp.terms_per_doc = 30;
  cp.vocab_size = 150;
  cp.term_zipf = 0.8;
  cp.seed = 2005;
  auto scores = MakeScores(cp.num_docs, 10000.0, 0.7, 99);

  for (Method m : methods) {
    auto options = IndexWorld::DefaultOptions();
    auto w1 = IndexWorld::Make(m, cp, scores, options, PostingFormat::kV1);
    auto w2 = IndexWorld::Make(m, cp, scores, options, PostingFormat::kV2);
    ASSERT_NE(w1, nullptr);
    ASSERT_NE(w2, nullptr);

    // A few score updates + doc churn so short lists participate.
    Random rng(7);
    for (int i = 0; i < 200; ++i) {
      const DocId d = rng.Uniform(cp.num_docs);
      const double ns = scores[d] + rng.Uniform(2000);
      ASSERT_TRUE(w1->idx->OnScoreUpdate(d, ns).ok());
      ASSERT_TRUE(w2->idx->OnScoreUpdate(d, ns).ok());
    }

    for (bool conjunctive : {true, false}) {
      for (uint64_t qseed = 0; qseed < 30; ++qseed) {
        Random qr(1000 + qseed);
        Query q;
        q.conjunctive = conjunctive;
        q.terms.push_back(qr.Uniform(cp.vocab_size));
        q.terms.push_back(qr.Uniform(cp.vocab_size));
        if (q.terms[0] == q.terms[1]) q.terms.pop_back();
        std::vector<SearchResult> r1, r2;
        ASSERT_TRUE(w1->idx->TopK(q, 10, &r1).ok());
        ASSERT_TRUE(w2->idx->TopK(q, 10, &r2).ok());
        ASSERT_EQ(r1.size(), r2.size())
            << MethodName(m) << " conj=" << conjunctive << " q=" << qseed;
        for (size_t i = 0; i < r1.size(); ++i) {
          EXPECT_EQ(r1[i].doc, r2[i].doc) << MethodName(m) << " @" << i;
          EXPECT_EQ(r1[i].score, r2[i].score) << MethodName(m) << " @" << i;
        }
      }
    }
  }
}

// --- fuzz-derived properties (fuzz/fuzz_block_codec.cc) -----------------
//
// The block-codec fuzz harness traps when a cursor yields more postings
// than its input bytes could encode; this test pins the same bounded-
// termination contract in the regular suite using the harness's
// deterministic mutator over every list kind in both formats.

TEST_F(CodecV2Test, MutatedListsNeverOverrunTheirByteBudget) {
  auto id_ts = MakePostings(129, 77);
  std::vector<DocId> docs;
  std::vector<ScorePosting> scored;
  for (size_t i = 0; i < id_ts.size(); ++i) {
    docs.push_back(id_ts[i].doc);
    scored.push_back({1000.0 - static_cast<double>(i), id_ts[i].doc});
  }
  std::vector<ChunkGroup> groups(2);
  groups[0].cid = 9;
  groups[0].postings.assign(id_ts.begin(), id_ts.begin() + 70);
  groups[1].cid = 3;
  groups[1].postings.assign(id_ts.begin() + 70, id_ts.end());

  std::vector<std::pair<std::string, int>> lists;  // (bytes, kind)
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    std::string out;
    EncodeIdList(docs, &out, fmt);
    lists.emplace_back(out, 0);
    out.clear();
    EncodeIdTsList(id_ts, /*with_ts=*/true, &out, fmt);
    lists.emplace_back(out, 1);
    out.clear();
    EncodeChunkList(groups, /*with_ts=*/true, &out, fmt);
    lists.emplace_back(out, 2);
    out.clear();
    EncodeScoreList(scored, &out, fmt);
    lists.emplace_back(out, 3);
  }

  auto scratch = std::make_unique<CursorScratch>();
  auto sscratch = std::make_unique<ScoreCursorScratch>();
  uint64_t rng = 0x5eedf00ddeadbeefULL;
  for (const auto& [original, kind] : lists) {
    for (int round = 0; round < 60; ++round) {
      std::string bytes = original;
      for (int s = 0; s < 1 + round % 6; ++s) svr::fuzz::Mutate(&bytes, &rng);
      auto ref = blobs_.Write(bytes);
      ASSERT_TRUE(ref.ok());
      // Each successful step consumes at least one input byte somewhere,
      // so a cursor still yielding past this bound is looping.
      const size_t bound = 16 * bytes.size() + 1024;
      size_t steps = 0;
      for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
        if (kind == 3) {
          ScorePostingCursor cur(blobs_.NewReader(ref.value()), fmt,
                                 sscratch.get());
          if (!cur.Init().ok()) continue;
          while (cur.Valid()) {
            if (!cur.Next().ok()) break;
            ASSERT_LE(++steps, bound);
          }
        } else if (kind == 2) {
          ChunkPostingCursor cur(blobs_.NewReader(ref.value()),
                                 /*with_ts=*/true, fmt, scratch.get());
          if (!cur.Init().ok()) continue;
          bool bail = false;
          while (cur.HasGroup() && !bail) {
            while (cur.Valid()) {
              if (!cur.Next().ok()) { bail = true; break; }
              ASSERT_LE(++steps, bound);
            }
            if (bail || !cur.NextGroup().ok()) break;
            ASSERT_LE(++steps, bound);
          }
        } else {
          IdPostingCursor cur(blobs_.NewReader(ref.value()),
                              /*with_ts=*/kind == 1, fmt, scratch.get());
          if (!cur.Init().ok()) continue;
          while (cur.Valid()) {
            if (!cur.Next().ok()) break;
            ASSERT_LE(++steps, bound);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace svr::index
