#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "index/index_factory.h"
#include "tests/index_test_util.h"

namespace svr::test {
namespace {

using index::Method;
using index::Query;
using index::SearchResult;

// All six methods of §4 / §5.2.
const Method kAllMethods[] = {
    Method::kId,          Method::kScore,
    Method::kScoreThreshold, Method::kChunk,
    Method::kIdTermScore, Method::kChunkTermScore,
};

std::string PrintMethod(const ::testing::TestParamInfo<Method>& info) {
  std::string n = index::MethodName(info.param);
  std::string out;
  for (char c : n) {
    if (c == '-') continue;
    out.push_back(c);
  }
  return out;
}

class IndexMethodTest : public ::testing::TestWithParam<Method> {
 protected:
  void SetUp() override {
    params_.num_docs = 400;
    params_.terms_per_doc = 40;
    params_.vocab_size = 120;
    params_.term_zipf = 0.6;
    params_.seed = 7;
    scores_ = MakeScores(params_.num_docs, 10000.0, 0.75, 99);
    world_ = IndexWorld::Make(GetParam(), params_, scores_);
    ASSERT_NE(world_, nullptr);
  }

  bool with_ts() const { return IsTermScoreMethod(GetParam()); }

  // Runs query on both index and oracle and compares exactly.
  void ExpectMatchesOracle(const Query& q, size_t k,
                           const std::string& label) {
    std::vector<SearchResult> got, want;
    ASSERT_TRUE(world_->idx->TopK(q, k, &got).ok()) << label;
    ASSERT_TRUE(world_->oracle->TopK(q, k, with_ts(), &want).ok()) << label;
    ASSERT_EQ(got.size(), want.size()) << label;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc)
          << label << " rank " << i << " method "
          << index::MethodName(GetParam());
      EXPECT_NEAR(got[i].score, want[i].score, 1e-9)
          << label << " rank " << i;
    }
  }

  // A deterministic spread of queries over frequent & rare terms.
  std::vector<Query> TestQueries(bool conjunctive) {
    std::vector<TermId> by_freq = world_->corpus.TermsByFrequency();
    std::vector<Query> qs;
    auto add = [&](std::vector<TermId> terms) {
      Query q;
      q.terms = std::move(terms);
      q.conjunctive = conjunctive;
      qs.push_back(std::move(q));
    };
    add({by_freq[0]});
    add({by_freq[0], by_freq[1]});
    add({by_freq[2], by_freq[10]});
    add({by_freq[5], by_freq[20], by_freq[40]});
    add({by_freq[by_freq.size() / 2], by_freq[1]});
    add({by_freq[by_freq.size() - 1], by_freq[0]});
    return qs;
  }

  void ExpectAllQueriesMatch(const std::string& label) {
    for (bool conj : {true, false}) {
      int i = 0;
      for (const Query& q : TestQueries(conj)) {
        ExpectMatchesOracle(q, 10,
                            label + (conj ? "/conj" : "/disj") +
                                std::to_string(i++));
      }
    }
  }

  text::CorpusParams params_;
  std::vector<double> scores_;
  std::unique_ptr<IndexWorld> world_;
};

TEST_P(IndexMethodTest, FreshIndexMatchesOracle) {
  ExpectAllQueriesMatch("fresh");
}

TEST_P(IndexMethodTest, VariousK) {
  Query q;
  auto by_freq = world_->corpus.TermsByFrequency();
  q.terms = {by_freq[0], by_freq[1]};
  q.conjunctive = true;
  for (size_t k : {1u, 2u, 5u, 25u, 100u, 1000u}) {
    std::vector<SearchResult> got, want;
    ASSERT_TRUE(world_->idx->TopK(q, k, &got).ok());
    ASSERT_TRUE(world_->oracle->TopK(q, k, with_ts(), &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc) << "k=" << k << " rank " << i;
    }
  }
}

TEST_P(IndexMethodTest, EmptyAndDegenerateQueries) {
  std::vector<SearchResult> got;
  Query empty;
  ASSERT_TRUE(world_->idx->TopK(empty, 10, &got).ok());
  EXPECT_TRUE(got.empty());

  Query q;
  q.terms = {0};
  ASSERT_TRUE(world_->idx->TopK(q, 0, &got).ok());
  EXPECT_TRUE(got.empty());

  // A term beyond the vocabulary has no postings.
  q.terms = {static_cast<TermId>(params_.vocab_size + 5)};
  q.conjunctive = true;
  ASSERT_TRUE(world_->idx->TopK(q, 10, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST_P(IndexMethodTest, ScoreIncreasesAreVisibleImmediately) {
  auto by_freq = world_->corpus.TermsByFrequency();
  Random rng(123);
  for (int round = 0; round < 5; ++round) {
    // Push 20 random docs sharply upward ("flash crowd").
    for (int i = 0; i < 20; ++i) {
      DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
      double s;
      ASSERT_TRUE(world_->score_table->Get(d, &s).ok());
      ASSERT_TRUE(world_->idx->OnScoreUpdate(d, s + 5000.0 * (round + 1)).ok());
    }
    ExpectAllQueriesMatch("increase-round" + std::to_string(round));
  }
}

TEST_P(IndexMethodTest, ScoreDecreasesAreVisibleImmediately) {
  Random rng(321);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
      double s;
      ASSERT_TRUE(world_->score_table->Get(d, &s).ok());
      ASSERT_TRUE(world_->idx->OnScoreUpdate(d, s * 0.25).ok());
    }
    ExpectAllQueriesMatch("decrease-round" + std::to_string(round));
  }
}

TEST_P(IndexMethodTest, MixedUpdateStreamMatchesOracle) {
  // The paper's workload shape: Zipf-by-score picks, ±uniform steps,
  // plus a focus set that only climbs.
  Random rng(2005);
  std::vector<DocId> focus;
  for (int i = 0; i < 10; ++i) {
    focus.push_back(static_cast<DocId>(rng.Uniform(params_.num_docs)));
  }
  for (int step = 0; step < 400; ++step) {
    DocId d;
    double delta;
    if (rng.Uniform(100) < 30) {
      d = focus[rng.Uniform(focus.size())];
      delta = rng.UniformDouble(0, 2000.0);  // focus docs only increase
    } else {
      d = static_cast<DocId>(rng.Uniform(params_.num_docs));
      delta = rng.UniformDouble(0, 200.0) * (rng.OneIn(2) ? 1 : -1);
    }
    double s;
    ASSERT_TRUE(world_->score_table->Get(d, &s).ok());
    ASSERT_TRUE(world_->idx->OnScoreUpdate(d, std::max(0.0, s + delta)).ok());
    if (step % 80 == 79) {
      ExpectAllQueriesMatch("mixed-step" + std::to_string(step));
    }
  }
  ExpectAllQueriesMatch("mixed-final");
}

TEST_P(IndexMethodTest, RepeatedUpdatesOfOneDocument) {
  // A single doc bouncing up and down stresses the ListScore/ListChunk
  // bookkeeping (stale postings must never resurface).
  auto by_freq = world_->corpus.TermsByFrequency();
  DocId d = 0;
  // Find a doc containing the two most frequent terms.
  for (DocId c = 0; c < params_.num_docs; ++c) {
    if (world_->corpus.doc(c).Contains(by_freq[0]) &&
        world_->corpus.doc(c).Contains(by_freq[1])) {
      d = c;
      break;
    }
  }
  const double seq[] = {50.0,   90000.0, 12.0,  500000.0, 0.0,
                        7500.0, 7500.0,  80.0,  1e6,      3.0};
  int i = 0;
  for (double s : seq) {
    ASSERT_TRUE(world_->idx->OnScoreUpdate(d, s).ok());
    ExpectAllQueriesMatch("bounce" + std::to_string(i++));
  }
}

TEST_P(IndexMethodTest, UpdateToZeroAndBack) {
  for (DocId d = 0; d < 30; ++d) {
    ASSERT_TRUE(world_->idx->OnScoreUpdate(d, 0.0).ok());
  }
  ExpectAllQueriesMatch("zeroed");
  for (DocId d = 0; d < 30; ++d) {
    ASSERT_TRUE(world_->idx->OnScoreUpdate(d, 123456.0).ok());
  }
  ExpectAllQueriesMatch("revived");
}

TEST_P(IndexMethodTest, ColdCacheQueriesStayCorrect) {
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(params_.num_docs));
    double s;
    ASSERT_TRUE(world_->score_table->Get(d, &s).ok());
    ASSERT_TRUE(
        world_->idx->OnScoreUpdate(d, s + rng.UniformDouble(0, 9000)).ok());
  }
  // The benchmark protocol evicts the long-list pool before queries.
  ASSERT_TRUE(world_->list_pool->EvictAll().ok());
  ExpectAllQueriesMatch("cold");
}

TEST_P(IndexMethodTest, StatsAreMaintained) {
  auto by_freq = world_->corpus.TermsByFrequency();
  world_->idx->ResetStats();
  ASSERT_TRUE(world_->idx->OnScoreUpdate(3, 777.0).ok());
  EXPECT_EQ(world_->idx->stats().score_updates, 1u);
  Query q;
  q.terms = {by_freq[0]};
  std::vector<SearchResult> got;
  ASSERT_TRUE(world_->idx->TopK(q, 5, &got).ok());
  EXPECT_EQ(world_->idx->stats().queries, 1u);
  EXPECT_GT(world_->idx->stats().postings_scanned, 0u);
}

TEST_P(IndexMethodTest, LongListSizeIsReported) {
  EXPECT_GT(world_->idx->LongListBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, IndexMethodTest,
                         ::testing::ValuesIn(kAllMethods), PrintMethod);

// --- document operations (Appendix A); TS methods excluded from content
// updates (stale term scores documented in DESIGN.md) -------------------

const Method kDocOpMethods[] = {
    Method::kId,
    Method::kScore,
    Method::kScoreThreshold,
    Method::kChunk,
};

class DocOpsTest : public ::testing::TestWithParam<Method> {
 protected:
  void SetUp() override {
    params_.num_docs = 250;
    params_.terms_per_doc = 30;
    params_.vocab_size = 90;
    params_.term_zipf = 0.5;
    params_.seed = 17;
    scores_ = MakeScores(params_.num_docs, 50000.0, 0.75, 4);
    world_ = IndexWorld::Make(GetParam(), params_, scores_);
    ASSERT_NE(world_, nullptr);
  }

  void ExpectAllQueriesMatch(const std::string& label) {
    auto by_freq = world_->corpus.TermsByFrequency();
    for (bool conj : {true, false}) {
      for (size_t a : {0u, 3u, 20u}) {
        Query q;
        q.terms = {by_freq[a], by_freq[(a + 1) % by_freq.size()]};
        q.conjunctive = conj;
        std::vector<SearchResult> got, want;
        ASSERT_TRUE(world_->idx->TopK(q, 10, &got).ok()) << label;
        ASSERT_TRUE(world_->oracle->TopK(q, 10, false, &want).ok());
        ASSERT_EQ(got.size(), want.size()) << label;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
        }
      }
    }
  }

  // Makes a document from explicit term ranks (by frequency).
  text::Document DocFromRanks(const std::vector<size_t>& ranks) {
    auto by_freq = world_->corpus.TermsByFrequency();
    std::vector<TermId> tokens;
    for (size_t r : ranks) tokens.push_back(by_freq[r % by_freq.size()]);
    return text::Document::FromTokens(std::move(tokens));
  }

  text::CorpusParams params_;
  std::vector<double> scores_;
  std::unique_ptr<IndexWorld> world_;
};

TEST_P(DocOpsTest, InsertedDocumentsAreSearchable) {
  for (int i = 0; i < 25; ++i) {
    DocId d = static_cast<DocId>(world_->corpus.num_docs());
    world_->corpus.Add(DocFromRanks({0, 1, 2, static_cast<size_t>(3 + i)}));
    ASSERT_TRUE(world_->idx->InsertDocument(d, 90000.0 + i).ok());
  }
  ExpectAllQueriesMatch("inserted");
}

TEST_P(DocOpsTest, InsertedThenUpdatedDocuments) {
  DocId d = static_cast<DocId>(world_->corpus.num_docs());
  world_->corpus.Add(DocFromRanks({0, 1, 5}));
  ASSERT_TRUE(world_->idx->InsertDocument(d, 100.0).ok());
  ExpectAllQueriesMatch("insert");
  ASSERT_TRUE(world_->idx->OnScoreUpdate(d, 999999.0).ok());
  ExpectAllQueriesMatch("insert+raise");
  ASSERT_TRUE(world_->idx->OnScoreUpdate(d, 1.0).ok());
  ExpectAllQueriesMatch("insert+drop");
}

TEST_P(DocOpsTest, DeletedDocumentsDisappear) {
  // Delete the current top results of a frequent-term query.
  auto by_freq = world_->corpus.TermsByFrequency();
  Query q;
  q.terms = {by_freq[0]};
  std::vector<SearchResult> top;
  ASSERT_TRUE(world_->idx->TopK(q, 5, &top).ok());
  ASSERT_FALSE(top.empty());
  for (const auto& r : top) {
    ASSERT_TRUE(world_->idx->DeleteDocument(r.doc).ok());
  }
  ExpectAllQueriesMatch("deleted");
  std::vector<SearchResult> after;
  ASSERT_TRUE(world_->idx->TopK(q, 5, &after).ok());
  for (const auto& r : after) {
    for (const auto& gone : top) EXPECT_NE(r.doc, gone.doc);
  }
}

TEST_P(DocOpsTest, ContentUpdateAddsAndRemovesTerms) {
  auto by_freq = world_->corpus.TermsByFrequency();
  const TermId rare = by_freq[by_freq.size() - 1];
  // Give doc 7 a brand-new term and strip one it had.
  const text::Document old_doc = world_->corpus.doc(7);
  std::vector<TermId> tokens(old_doc.terms().begin(),
                             old_doc.terms().end() - 1);
  tokens.push_back(rare);
  world_->corpus.Replace(7, text::Document::FromTokens(std::move(tokens)));
  ASSERT_TRUE(world_->idx->UpdateContent(7, old_doc).ok());
  ExpectAllQueriesMatch("content-update");

  // The removed term must no longer match doc 7 conjunctively.
  Query q;
  q.terms = {old_doc.terms().back()};
  std::vector<SearchResult> got;
  ASSERT_TRUE(world_->idx->TopK(q, 1000, &got).ok());
  for (const auto& r : got) EXPECT_NE(r.doc, 7u);
}

TEST_P(DocOpsTest, ContentUpdateThenScoreChurn) {
  const text::Document old_doc = world_->corpus.doc(3);
  auto by_freq = world_->corpus.TermsByFrequency();
  std::vector<TermId> tokens(old_doc.terms().begin(), old_doc.terms().end());
  tokens.push_back(by_freq[0]);
  tokens.push_back(by_freq[1]);
  world_->corpus.Replace(3, text::Document::FromTokens(std::move(tokens)));
  ASSERT_TRUE(world_->idx->UpdateContent(3, old_doc).ok());
  // Move the doc around afterwards: the moved postings must carry the
  // *updated* term set.
  ASSERT_TRUE(world_->idx->OnScoreUpdate(3, 1e6).ok());
  ExpectAllQueriesMatch("content+raise");
  ASSERT_TRUE(world_->idx->OnScoreUpdate(3, 2.0).ok());
  ExpectAllQueriesMatch("content+drop");
}

INSTANTIATE_TEST_SUITE_P(DocOps, DocOpsTest,
                         ::testing::ValuesIn(kDocOpMethods), PrintMethod);

// --- offline merge -------------------------------------------------------

class MergeTest : public ::testing::TestWithParam<Method> {};

TEST_P(MergeTest, RebuildIndexPreservesResults) {
  text::CorpusParams params;
  params.num_docs = 200;
  params.terms_per_doc = 25;
  params.vocab_size = 80;
  params.seed = 3;
  auto scores = MakeScores(params.num_docs, 20000.0, 0.75, 8);
  auto world = IndexWorld::Make(GetParam(), params, scores);
  ASSERT_NE(world, nullptr);

  Random rng(9);
  for (int i = 0; i < 300; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(params.num_docs));
    double s;
    ASSERT_TRUE(world->score_table->Get(d, &s).ok());
    double delta = rng.UniformDouble(0, 5000) * (rng.OneIn(2) ? 1 : -1);
    ASSERT_TRUE(
        world->idx->OnScoreUpdate(d, std::max(0.0, s + delta)).ok());
  }

  auto by_freq = world->corpus.TermsByFrequency();
  Query q;
  q.terms = {by_freq[0], by_freq[1]};
  std::vector<SearchResult> before;
  ASSERT_TRUE(world->idx->TopK(q, 20, &before).ok());

  ASSERT_TRUE(world->idx->RebuildIndex().ok());
  EXPECT_EQ(world->idx->ShortListBytes() == 0 ||
                world->idx->ShortListBytes() <= 3 * 4096ull,
            true);  // short structures collapse to (near) empty trees

  std::vector<SearchResult> after;
  ASSERT_TRUE(world->idx->TopK(q, 20, &after).ok());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].doc, after[i].doc) << i;
  }
}

const Method kMergeMethods[] = {
    Method::kId,
    Method::kScoreThreshold,
    Method::kChunk,
    Method::kChunkTermScore,
};

INSTANTIATE_TEST_SUITE_P(Merge, MergeTest,
                         ::testing::ValuesIn(kMergeMethods), PrintMethod);

}  // namespace
}  // namespace svr::test
