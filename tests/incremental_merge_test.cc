#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "index/index_factory.h"
#include "index/merge_policy.h"
#include "index/short_list.h"
#include "storage/page_store.h"
#include "tests/index_test_util.h"

namespace svr::test {
namespace {

using index::Method;
using index::PostingOp;
using index::Query;
using index::SearchResult;
using index::ShortList;

// --- ShortList per-term range deletion & accounting ----------------------

class ShortListKindTest
    : public ::testing::TestWithParam<ShortList::KeyKind> {
 protected:
  void SetUp() override {
    store_ = std::make_unique<storage::InMemoryPageStore>(4096);
    pool_ = std::make_unique<storage::BufferPool>(store_.get(), 256);
    auto sl = ShortList::Create(pool_.get(), GetParam());
    ASSERT_TRUE(sl.ok());
    list_ = std::move(sl).value();
  }

  // A sort value that is valid for every key kind.
  static double Sv(uint32_t v) { return static_cast<double>(v); }

  std::unique_ptr<storage::InMemoryPageStore> store_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<ShortList> list_;
};

TEST_P(ShortListKindTest, DeleteTermRemovesOnlyThatTerm) {
  ASSERT_TRUE(list_->Put(1, Sv(5), 10, PostingOp::kAdd, 0.5f).ok());
  ASSERT_TRUE(list_->Put(1, Sv(5), 11, PostingOp::kAdd, 0.5f).ok());
  ASSERT_TRUE(list_->Put(1, Sv(7), 12, PostingOp::kRemove, 0.0f).ok());
  ASSERT_TRUE(list_->Put(2, Sv(5), 10, PostingOp::kAdd, 0.5f).ok());
  ASSERT_TRUE(list_->Put(3, Sv(9), 13, PostingOp::kAdd, 0.5f).ok());
  EXPECT_EQ(list_->TermPostingCount(1), 3u);
  EXPECT_EQ(list_->TermPostingCount(2), 1u);
  EXPECT_EQ(list_->num_postings(), 5u);
  EXPECT_EQ(list_->DocPostingCount(10), 2u);

  ASSERT_TRUE(list_->DeleteTerm(1).ok());
  EXPECT_EQ(list_->TermPostingCount(1), 0u);
  EXPECT_FALSE(list_->Scan(1).Valid());
  EXPECT_EQ(list_->num_postings(), 2u);
  EXPECT_EQ(list_->DocPostingCount(10), 1u);
  EXPECT_EQ(list_->DocPostingCount(11), 0u);
  // Untouched terms scan as before.
  EXPECT_TRUE(list_->Scan(2).Valid());
  EXPECT_TRUE(list_->Scan(3).Valid());
  EXPECT_TRUE(list_->Contains(2, Sv(5), 10));
  EXPECT_FALSE(list_->Contains(1, Sv(5), 10));
  // Deleting an empty term is a no-op.
  ASSERT_TRUE(list_->DeleteTerm(1).ok());
  ASSERT_TRUE(list_->DeleteTerm(999).ok());
}

TEST_P(ShortListKindTest, UpsertDoesNotDoubleCount) {
  ASSERT_TRUE(list_->Put(4, Sv(2), 20, PostingOp::kAdd, 0.1f).ok());
  ASSERT_TRUE(list_->Put(4, Sv(2), 20, PostingOp::kRemove, 0.2f).ok());
  EXPECT_EQ(list_->TermPostingCount(4), 1u);
  EXPECT_EQ(list_->DocPostingCount(20), 1u);
  // The overwrite took effect.
  ShortList::Cursor c = list_->Scan(4);
  ASSERT_TRUE(c.Valid());
  EXPECT_EQ(c.op(), PostingOp::kRemove);

  ASSERT_TRUE(list_->Delete(4, Sv(2), 20).ok());
  EXPECT_EQ(list_->TermPostingCount(4), 0u);
  EXPECT_EQ(list_->DocPostingCount(20), 0u);
  EXPECT_TRUE(list_->Delete(4, Sv(2), 20).IsNotFound());
}

TEST_P(ShortListKindTest, TermCountsDriveApproxBytes) {
  ASSERT_TRUE(list_->Put(6, Sv(1), 30, PostingOp::kAdd, 0.0f).ok());
  ASSERT_TRUE(list_->Put(6, Sv(1), 31, PostingOp::kAdd, 0.0f).ok());
  EXPECT_GT(list_->TermApproxBytes(6), 0u);
  EXPECT_EQ(list_->TermApproxBytes(7), 0u);
  EXPECT_EQ(list_->term_counts().size(), 1u);
  ASSERT_TRUE(list_->Clear().ok());
  EXPECT_TRUE(list_->term_counts().empty());
  EXPECT_EQ(list_->DocPostingCount(30), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ShortListKindTest,
    ::testing::Values(ShortList::KeyKind::kScore,
                      ShortList::KeyKind::kChunk, ShortList::KeyKind::kId),
    [](const ::testing::TestParamInfo<ShortList::KeyKind>& info) {
      switch (info.param) {
        case ShortList::KeyKind::kScore:
          return "Score";
        case ShortList::KeyKind::kChunk:
          return "Chunk";
        case ShortList::KeyKind::kId:
          return "Id";
      }
      return "?";
    });

// --- merge equivalence ----------------------------------------------------

// All five methods with short lists (Score relocates in place instead).
const Method kMergeMethods[] = {
    Method::kId,          Method::kIdTermScore,  Method::kScoreThreshold,
    Method::kChunk,       Method::kChunkTermScore,
};

std::string PrintMethod(const ::testing::TestParamInfo<Method>& info) {
  std::string n = index::MethodName(info.param);
  std::string out;
  for (char c : n) {
    if (c != '-') out.push_back(c);
  }
  return out;
}

// Runs the same mixed insert/update/delete/content-update workload
// against two identical worlds, incrementally merging one of them at
// random points, and asserts the two indexes and the oracle agree at
// every checkpoint.
class MergeEquivalenceTest : public ::testing::TestWithParam<Method> {
 protected:
  void SetUp() override {
    params_.num_docs = 300;
    params_.terms_per_doc = 30;
    params_.vocab_size = 100;
    params_.term_zipf = 0.6;
    params_.seed = 41;
    scores_ = MakeScores(params_.num_docs, 20000.0, 0.75, 13);
    merged_ = IndexWorld::Make(GetParam(), params_, scores_);
    plain_ = IndexWorld::Make(GetParam(), params_, scores_);
    ASSERT_NE(merged_, nullptr);
    ASSERT_NE(plain_, nullptr);
  }

  bool with_ts() const { return IsTermScoreMethod(GetParam()); }

  void ExpectEquivalent(const std::string& label) {
    auto by_freq = merged_->corpus.TermsByFrequency();
    std::vector<Query> qs;
    for (bool conj : {true, false}) {
      for (size_t a : {size_t{0}, size_t{2}, size_t{9}, by_freq.size() / 2}) {
        Query q;
        q.terms = {by_freq[a], by_freq[(a + 1) % by_freq.size()]};
        q.conjunctive = conj;
        qs.push_back(q);
      }
      Query single;
      single.terms = {by_freq[0]};
      single.conjunctive = conj;
      qs.push_back(single);
    }
    int qi = 0;
    for (const Query& q : qs) {
      std::vector<SearchResult> got_m, got_p, want;
      ASSERT_TRUE(merged_->idx->TopK(q, 10, &got_m).ok()) << label;
      ASSERT_TRUE(plain_->idx->TopK(q, 10, &got_p).ok()) << label;
      ASSERT_TRUE(merged_->oracle->TopK(q, 10, with_ts(), &want).ok());
      ASSERT_EQ(got_m.size(), want.size()) << label << " q" << qi;
      ASSERT_EQ(got_p.size(), want.size()) << label << " q" << qi;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got_m[i].doc, want[i].doc)
            << label << " q" << qi << " rank " << i << " (merged)";
        EXPECT_EQ(got_p[i].doc, want[i].doc)
            << label << " q" << qi << " rank " << i << " (plain)";
        EXPECT_NEAR(got_m[i].score, want[i].score, 1e-6)
            << label << " q" << qi << " rank " << i;
      }
      ++qi;
    }
  }

  // Applies one operation identically to both worlds.
  void ScoreUpdate(DocId d, double s) {
    ASSERT_TRUE(merged_->idx->OnScoreUpdate(d, s).ok());
    ASSERT_TRUE(plain_->idx->OnScoreUpdate(d, s).ok());
  }
  void Insert(std::vector<TermId> tokens, double s) {
    const DocId d = static_cast<DocId>(merged_->corpus.num_docs());
    merged_->corpus.Add(text::Document::FromTokens(
        std::vector<TermId>(tokens)));
    plain_->corpus.Add(text::Document::FromTokens(std::move(tokens)));
    ASSERT_TRUE(merged_->idx->InsertDocument(d, s).ok());
    ASSERT_TRUE(plain_->idx->InsertDocument(d, s).ok());
  }
  void Delete(DocId d) {
    ASSERT_TRUE(merged_->idx->DeleteDocument(d).ok());
    ASSERT_TRUE(plain_->idx->DeleteDocument(d).ok());
    deleted_.insert(d);
  }
  void ContentUpdate(DocId d, std::vector<TermId> tokens) {
    const text::Document old_doc = merged_->corpus.doc(d);
    merged_->corpus.Replace(
        d, text::Document::FromTokens(std::vector<TermId>(tokens)));
    plain_->corpus.Replace(
        d, text::Document::FromTokens(std::move(tokens)));
    ASSERT_TRUE(merged_->idx->UpdateContent(d, old_doc).ok());
    ASSERT_TRUE(plain_->idx->UpdateContent(d, old_doc).ok());
  }

  DocId PickLiveDoc(Random* rng) {
    while (true) {
      DocId d = static_cast<DocId>(
          rng->Uniform(merged_->corpus.num_docs()));
      if (deleted_.count(d) == 0) return d;
    }
  }

  text::CorpusParams params_;
  std::vector<double> scores_;
  std::unique_ptr<IndexWorld> merged_;
  std::unique_ptr<IndexWorld> plain_;
  std::set<DocId> deleted_;
};

TEST_P(MergeEquivalenceTest, RandomMergePointsPreserveResults) {
  Random rng(777);
  auto by_freq = merged_->corpus.TermsByFrequency();
  // Content updates on TS methods are excluded like everywhere else in
  // the suite: term-frequency changes leave stale term scores in the
  // untouched long postings of *both* worlds, and the merge legitimately
  // refreshes them — equivalence is only defined without them.
  const bool content_updates = !with_ts();

  for (int step = 0; step < 500; ++step) {
    const uint32_t roll = rng.Uniform(100);
    if (roll < 60) {
      DocId d = PickLiveDoc(&rng);
      double s;
      if (!merged_->score_table->Get(d, &s).ok()) s = 0.0;
      double delta = rng.UniformDouble(0, 4000.0) * (rng.OneIn(2) ? 1 : -1);
      ScoreUpdate(d, std::max(0.0, s + delta));
    } else if (roll < 75) {
      std::vector<TermId> tokens;
      for (int i = 0; i < 12; ++i) {
        tokens.push_back(by_freq[rng.Uniform(by_freq.size())]);
      }
      Insert(std::move(tokens), rng.UniformDouble(0, 40000.0));
    } else if (roll < 83) {
      Delete(PickLiveDoc(&rng));
    } else if (content_updates && roll < 95) {
      DocId d = PickLiveDoc(&rng);
      const auto& terms = merged_->corpus.doc(d).terms();
      std::vector<TermId> tokens(terms.begin(), terms.end());
      if (!tokens.empty() && rng.OneIn(2)) tokens.pop_back();
      tokens.push_back(by_freq[rng.Uniform(by_freq.size())]);
      ContentUpdate(d, std::move(tokens));
    } else {
      DocId d = PickLiveDoc(&rng);
      double s;
      if (!merged_->score_table->Get(d, &s).ok()) s = 0.0;
      ScoreUpdate(d, s + rng.UniformDouble(0, 15000.0));
    }

    // Merge a random term of the merged world at random points.
    if (step % 23 == 22) {
      TermId t = by_freq[rng.Uniform(by_freq.size())];
      ASSERT_TRUE(merged_->idx->MergeTerm(t).ok()) << "term " << t;
    }
    if (step % 125 == 124) {
      ExpectEquivalent("step" + std::to_string(step));
    }
  }

  // Drain every remaining short posting and compare once more.
  ASSERT_TRUE(merged_->idx->MergeAllTerms().ok());
  EXPECT_EQ(merged_->idx->ShortPostingCount(), 0u);
  EXPECT_GT(plain_->idx->ShortPostingCount(), 0u);
  ExpectEquivalent("final");

  // Merged-away terms answer further updates correctly too.
  for (int step = 0; step < 60; ++step) {
    DocId d = PickLiveDoc(&rng);
    double s;
    if (!merged_->score_table->Get(d, &s).ok()) s = 0.0;
    ScoreUpdate(d, std::max(0.0, s + rng.UniformDouble(0, 9000.0) *
                                         (rng.OneIn(2) ? 1 : -1)));
  }
  ExpectEquivalent("post-merge-churn");
}

TEST_P(MergeEquivalenceTest, PolicySweepPreservesResults) {
  // Rebuild the merged world with an aggressive policy so the sweeps do
  // real work on this small corpus.
  MergePolicy policy;
  policy.enabled = true;
  policy.short_ratio = 0.05;
  policy.min_short_postings = 4;
  policy.max_terms_per_sweep = 16;
  merged_ = IndexWorld::Make(GetParam(), params_, scores_,
                             IndexWorld::DefaultOptions(),
                             PostingFormat::kV2, policy);
  ASSERT_NE(merged_, nullptr);

  Random rng(31);
  auto by_freq = merged_->corpus.TermsByFrequency();
  uint64_t merged_terms = 0;
  for (int step = 0; step < 400; ++step) {
    if (step % 4 == 3) {
      // Inserts churn the short lists of every method (the ID family's
      // score updates touch only the Score table).
      std::vector<TermId> tokens;
      for (int i = 0; i < 12; ++i) {
        tokens.push_back(by_freq[rng.Uniform(by_freq.size())]);
      }
      Insert(std::move(tokens), rng.UniformDouble(0, 30000.0));
    } else {
      DocId d = PickLiveDoc(&rng);
      double s;
      if (!merged_->score_table->Get(d, &s).ok()) s = 0.0;
      double delta =
          rng.UniformDouble(0, 6000.0) * (rng.OneIn(2) ? 1 : -1);
      ScoreUpdate(d, std::max(0.0, s + delta));
    }
    if (step % 50 == 49) {
      auto r = merged_->idx->MaybeAutoMerge();
      ASSERT_TRUE(r.ok());
      merged_terms += r.value();
      ExpectEquivalent("sweep-step" + std::to_string(step));
    }
  }
  EXPECT_GT(merged_terms, 0u) << "policy never triggered";
  EXPECT_GT(merged_->idx->stats().term_merges, 0u);
  EXPECT_GT(merged_->idx->stats().auto_merge_sweeps, 0u);
  // The policy keeps the short structure materially smaller than the
  // never-merged twin's.
  EXPECT_LT(merged_->idx->ShortPostingCount(),
            plain_->idx->ShortPostingCount());
}

TEST_P(MergeEquivalenceTest, MergeTermDoesNotRescanCorpus) {
  Random rng(5);
  auto by_freq = merged_->corpus.TermsByFrequency();
  for (int i = 0; i < 120; ++i) {
    DocId d = PickLiveDoc(&rng);
    double s;
    ASSERT_TRUE(merged_->score_table->Get(d, &s).ok());
    ScoreUpdate(d, s + rng.UniformDouble(0, 20000.0));
  }
  merged_->idx->ResetStats();
  ASSERT_TRUE(merged_->idx->MergeTerm(by_freq[0]).ok());
  EXPECT_EQ(merged_->idx->stats().corpus_docs_scanned, 0u)
      << "incremental merge must not re-scan the corpus";
  EXPECT_EQ(merged_->idx->stats().term_merges, 1u);
  EXPECT_GT(merged_->idx->stats().merge_postings_written, 0u);

  // The full rebuild, by contrast, visits every document.
  merged_->idx->ResetStats();
  ASSERT_TRUE(merged_->idx->RebuildIndex().ok());
  EXPECT_GE(merged_->idx->stats().corpus_docs_scanned,
            static_cast<uint64_t>(merged_->corpus.num_docs()));
  ExpectEquivalent("post-rebuild");
}

INSTANTIATE_TEST_SUITE_P(Methods, MergeEquivalenceTest,
                         ::testing::ValuesIn(kMergeMethods), PrintMethod);

// --- budget trigger -------------------------------------------------------

TEST(MergeBudgetTest, ByteBudgetForcesMerges) {
  text::CorpusParams params;
  params.num_docs = 200;
  params.terms_per_doc = 25;
  params.vocab_size = 60;
  params.seed = 9;
  auto scores = MakeScores(params.num_docs, 10000.0, 0.75, 2);

  MergePolicy policy;
  policy.enabled = true;
  policy.short_ratio = 1e9;  // ratio trigger effectively off
  policy.min_short_postings = 1u << 30;
  policy.short_bytes_budget = 1;  // any short structure is over budget
  auto world = IndexWorld::Make(Method::kChunk, params, scores,
                                IndexWorld::DefaultOptions(),
                                PostingFormat::kV2, policy);
  ASSERT_NE(world, nullptr);

  Random rng(1);
  for (int i = 0; i < 150; ++i) {
    DocId d = static_cast<DocId>(rng.Uniform(params.num_docs));
    double s;
    ASSERT_TRUE(world->score_table->Get(d, &s).ok());
    ASSERT_TRUE(
        world->idx->OnScoreUpdate(d, s + rng.UniformDouble(0, 30000.0)).ok());
  }
  ASSERT_GT(world->idx->ShortPostingCount(), 0u);
  auto r = world->idx->MaybeAutoMerge();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value(), 0u);
}

// --- satellite regressions ------------------------------------------------

// UpdateContent / OnScoreUpdate on a document that never got a Score
// entry must not fail with NotFound (such docs are indexed at 0.0).
class NeverScoredDocTest : public ::testing::TestWithParam<Method> {};

TEST_P(NeverScoredDocTest, ContentAndScoreUpdatesSucceed) {
  text::CorpusParams params;
  params.num_docs = 120;
  params.terms_per_doc = 20;
  params.vocab_size = 50;
  params.seed = 23;
  auto scores = MakeScores(params.num_docs, 10000.0, 0.75, 6);
  const DocId unscored = 7;
  scores[unscored] = std::nan("");
  auto world = IndexWorld::Make(GetParam(), params, scores);
  ASSERT_NE(world, nullptr);

  // While still unscored, the doc is not a result candidate — exactly
  // like the oracle — even with k larger than the match count and no
  // deletions in play.
  {
    Query q;
    q.terms = {world->corpus.doc(unscored).terms()[0]};
    std::vector<SearchResult> got, want;
    ASSERT_TRUE(world->idx->TopK(q, 1000, &got).ok());
    ASSERT_TRUE(world->oracle->TopK(q, 1000, false, &want).ok());
    ASSERT_EQ(got.size(), want.size());
    for (const auto& r : got) EXPECT_NE(r.doc, unscored);
  }

  // Content update on the never-scored doc.
  const text::Document old_doc = world->corpus.doc(unscored);
  auto by_freq = world->corpus.TermsByFrequency();
  std::vector<TermId> tokens(old_doc.terms().begin(),
                             old_doc.terms().end() - 1);
  tokens.push_back(by_freq[by_freq.size() - 1]);
  world->corpus.Replace(unscored,
                        text::Document::FromTokens(std::move(tokens)));
  EXPECT_TRUE(world->idx->UpdateContent(unscored, old_doc).ok());

  // First score it ever receives flows through Algorithm 1.
  EXPECT_TRUE(world->idx->OnScoreUpdate(unscored, 50000.0).ok());

  // And it ranks by that score afterwards.
  Query q;
  q.terms = {by_freq[by_freq.size() - 1]};
  std::vector<SearchResult> got, want;
  ASSERT_TRUE(world->idx->TopK(q, 10, &got).ok());
  ASSERT_TRUE(world->oracle->TopK(q, 10, false, &want).ok());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
  }
}

const Method kNeverScoredMethods[] = {
    Method::kScore,
    Method::kScoreThreshold,
    Method::kChunk,
};

INSTANTIATE_TEST_SUITE_P(Methods, NeverScoredDocTest,
                         ::testing::ValuesIn(kNeverScoredMethods),
                         PrintMethod);

// Chunk-TermScore Phase-1 finalization must not use build-time fancy
// term scores for documents whose short postings carry fresher ones
// (content update changed tf, then a score move re-read it).
TEST(ChunkTermScoreStaleFancyTest, ShortPostingsGovernAfterContentUpdate) {
  text::CorpusParams params;
  params.num_docs = 150;
  params.terms_per_doc = 20;
  params.vocab_size = 60;
  params.term_zipf = 0.5;
  params.seed = 77;
  auto scores = MakeScores(params.num_docs, 10000.0, 0.75, 3);
  auto world = IndexWorld::Make(Method::kChunkTermScore, params, scores);
  ASSERT_NE(world, nullptr);

  auto by_freq = world->corpus.TermsByFrequency();
  const TermId a = by_freq[0];
  const TermId b = by_freq[1];
  // The doc with the highest build-time tf for `a` is surely in `a`'s
  // fancy list (fancy_list_size = 8 in the test options).
  DocId d = kInvalidDocId;
  double best = -1.0;
  for (DocId c = 0; c < params.num_docs; ++c) {
    if (!world->corpus.doc(c).Contains(a)) continue;
    if (world->corpus.doc(c).NormalizedTf(a) > best) {
      best = world->corpus.doc(c).NormalizedTf(a);
      d = c;
    }
  }
  ASSERT_NE(d, kInvalidDocId);

  // Dilute its tf for `a` sharply (and raise tf for `b`): surviving-term
  // frequencies change without touching the term *set*.
  const text::Document old_doc = world->corpus.doc(d);
  std::vector<TermId> tokens(old_doc.terms().begin(),
                             old_doc.terms().end());
  if (!old_doc.Contains(b)) tokens.push_back(b);
  for (int i = 0; i < 60; ++i) tokens.push_back(b);
  world->corpus.Replace(d, text::Document::FromTokens(std::move(tokens)));
  ASSERT_TRUE(world->idx->UpdateContent(d, old_doc).ok());

  // Move the doc into the short lists; the move re-reads the current tf.
  double s;
  ASSERT_TRUE(world->score_table->Get(d, &s).ok());
  ASSERT_TRUE(world->idx->OnScoreUpdate(d, s + 30000.0).ok());

  for (const std::vector<TermId>& terms :
       {std::vector<TermId>{a}, std::vector<TermId>{b},
        std::vector<TermId>{a, b}}) {
    Query q;
    q.terms = terms;
    q.conjunctive = true;
    std::vector<SearchResult> got, want;
    ASSERT_TRUE(world->idx->TopK(q, 10, &got).ok());
    ASSERT_TRUE(world->oracle->TopK(q, 10, true, &want).ok());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc)
          << "terms " << terms.size() << " rank " << i;
      EXPECT_NEAR(got[i].score, want[i].score, 1e-6) << "rank " << i;
    }
  }

  // Merging the churned terms refreshes their fancy lists; results hold.
  ASSERT_TRUE(world->idx->MergeTerm(a).ok());
  ASSERT_TRUE(world->idx->MergeTerm(b).ok());
  Query q;
  q.terms = {a, b};
  std::vector<SearchResult> got, want;
  ASSERT_TRUE(world->idx->TopK(q, 10, &got).ok());
  ASSERT_TRUE(world->oracle->TopK(q, 10, true, &want).ok());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "post-merge rank " << i;
  }
}

// Regression (found by the concurrent churn driver at scale): removing a
// long-list-backed term, re-adding it, and removing it again must leave
// the term dead for the document. The re-add's short ADD overwrites the
// first removal's REM marker at the same key; the second removal then
// used to *retract* that ADD instead of writing a REM — resurrecting the
// long posting. UpdateContent now always writes REM markers for removed
// terms (a stray REM is skipped by every stream and folded by merges).
class RemoveReaddRemoveTest : public ::testing::TestWithParam<Method> {};

TEST_P(RemoveReaddRemoveTest, SecondRemovalKeepsTheTermDead) {
  text::CorpusParams params;
  params.num_docs = 200;
  params.terms_per_doc = 20;
  params.vocab_size = 60;
  params.seed = 97;
  auto scores = MakeScores(params.num_docs, 10000.0, 0.75, 11);
  auto world = IndexWorld::Make(GetParam(), params, scores);
  ASSERT_NE(world, nullptr);

  const DocId d = 5;
  const std::vector<TermId> original(world->corpus.doc(d).terms().begin(),
                                     world->corpus.doc(d).terms().end());
  ASSERT_GE(original.size(), 2u);
  const TermId t = original[0];  // backed by the long list since Build
  std::vector<TermId> without;
  for (TermId x : original) {
    if (x != t) without.push_back(x);
  }

  auto apply = [&](const std::vector<TermId>& tokens) {
    const text::Document old_doc = world->corpus.doc(d);
    world->corpus.Replace(
        d, text::Document::FromTokens(std::vector<TermId>(tokens)));
    ASSERT_TRUE(world->idx->UpdateContent(d, old_doc).ok());
  };
  auto expect_dead = [&](const char* label) {
    Query q;
    q.terms = {t};
    std::vector<SearchResult> got;
    ASSERT_TRUE(world->idx->TopK(q, 1000, &got).ok()) << label;
    for (const auto& r : got) {
      EXPECT_NE(r.doc, d) << label
                          << ": removed term still matches the doc";
    }
  };

  apply(without);   // remove t -> REM marker over the long posting
  expect_dead("first removal");
  apply(original);  // re-add t -> ADD overwrites the REM at the same key
  apply(without);   // remove again -> must leave a REM, not retract
  expect_dead("second removal");

  // The incremental merge folds the marker away and stays dead.
  ASSERT_TRUE(world->idx->MergeTerm(t).ok());
  expect_dead("after merge");

  // And a final re-add resurfaces the doc for the term.
  apply(original);
  Query q;
  q.terms = {t};
  std::vector<SearchResult> got;
  ASSERT_TRUE(world->idx->TopK(q, 1000, &got).ok());
  bool found = false;
  for (const auto& r : got) found = found || r.doc == d;
  EXPECT_TRUE(found) << "re-added term no longer matches";
}

INSTANTIATE_TEST_SUITE_P(AllMergeMethods, RemoveReaddRemoveTest,
                         ::testing::ValuesIn(kMergeMethods), PrintMethod);

}  // namespace
}  // namespace svr::test
