#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"
#include "core/svr_engine.h"
#include "durability/checkpoint.h"
#include "durability/crc32c.h"
#include "durability/fault_injection.h"
#include "durability/log_writer.h"
#include "durability/wal_file.h"
#include "durability/wal_format.h"
#include "fuzz/standalone_driver.h"
#include "storage/page_store.h"
#include "workload/crash_driver.h"

namespace svr::test {
namespace {

using durability::AppendFrame;
using durability::FaultInjector;
using durability::ScanWal;
using durability::StatementKind;
using durability::WalScan;
using durability::WalStatement;
using relational::Schema;
using relational::Value;
using relational::ValueType;

/// Fresh empty directory under the test's working directory.
std::string TestDir(const std::string& name) {
  const std::string dir = "durability_test_" + name;
  EXPECT_TRUE(workload::WipeDirectory(dir).ok());
  EXPECT_TRUE(durability::EnsureDirectory(dir).ok());
  return dir;
}

// --- CRC-32C ------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The canonical check value of CRC-32C ("123456789" -> 0xE3069283).
  EXPECT_EQ(durability::Crc32c("123456789", 9), 0xE3069283u);
  // 32 zero bytes -> 0x8A9136AA (RFC 3720 appendix B.4 test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(durability::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "structured value ranking";
  const uint32_t whole = durability::Crc32c(data.data(), data.size());
  uint32_t split = durability::Crc32c(data.data(), 7);
  split = durability::Crc32c(split, data.data() + 7, data.size() - 7);
  EXPECT_EQ(split, whole);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    EXPECT_EQ(durability::UnmaskCrc(durability::MaskCrc(crc)), crc);
    EXPECT_NE(durability::MaskCrc(crc), crc);
  }
}

// --- statement encoding -------------------------------------------------

std::vector<WalStatement> SampleStatements() {
  std::vector<WalStatement> stmts;
  {
    WalStatement s;
    s.kind = StatementKind::kCreateTable;
    s.seq = 1;
    s.commit_ts = 1;
    s.table = "docs";
    s.schema =
        Schema({{"id", ValueType::kInt64}, {"text", ValueType::kString}}, 0);
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kInsert;
    s.seq = 2;
    s.commit_ts = 2;
    s.table = "docs";
    s.row = {Value::Int(7), Value::String("alpha beta gamma"),
             Value::Double(3.25), Value::Null()};
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kCreateTextIndex;
    s.seq = 3;
    s.commit_ts = 3;
    s.table = "docs";
    s.text_column = "text";
    s.specs = {{"S1", "scores", "id", "val",
                relational::AggregateKind::kValue}};
    s.agg_weights = {1.0, 0.5};
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kUpdate;
    s.seq = 4;
    s.commit_ts = 5;
    s.table = "scores";
    s.row = {Value::Int(-12), Value::Double(99.5)};
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kDelete;
    s.seq = 5;
    s.commit_ts = 6;
    s.table = "docs";
    s.pk = -42;
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kCheckpointHeader;
    s.header_seq = 5;
    s.header_ts = 6;
    stmts.push_back(s);
  }
  {
    WalStatement s;
    s.kind = StatementKind::kCheckpointFooter;
    s.footer_records = 5;
    stmts.push_back(s);
  }
  return stmts;
}

void ExpectStatementsEqual(const WalStatement& a, const WalStatement& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.commit_ts, b.commit_ts);
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.pk, b.pk);
  EXPECT_EQ(a.text_column, b.text_column);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.agg_weights, b.agg_weights);
  EXPECT_EQ(a.header_seq, b.header_seq);
  EXPECT_EQ(a.header_ts, b.header_ts);
  EXPECT_EQ(a.footer_records, b.footer_records);
  ASSERT_EQ(a.specs.size(), b.specs.size());
  for (size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].name, b.specs[i].name);
    EXPECT_EQ(a.specs[i].source_table, b.specs[i].source_table);
    EXPECT_EQ(a.specs[i].match_column, b.specs[i].match_column);
    EXPECT_EQ(a.specs[i].value_column, b.specs[i].value_column);
    EXPECT_EQ(a.specs[i].kind, b.specs[i].kind);
  }
  ASSERT_EQ(a.schema.num_columns(), b.schema.num_columns());
  EXPECT_EQ(a.schema.pk_index(), b.schema.pk_index());
  for (size_t i = 0; i < a.schema.num_columns(); ++i) {
    EXPECT_EQ(a.schema.column(i).name, b.schema.column(i).name);
    EXPECT_EQ(a.schema.column(i).type, b.schema.column(i).type);
  }
}

TEST(WalFormatTest, StatementRoundTrip) {
  for (const WalStatement& stmt : SampleStatements()) {
    std::string payload;
    durability::EncodeStatement(stmt, &payload);
    WalStatement back;
    ASSERT_TRUE(durability::DecodeStatement(Slice(payload), &back).ok());
    ExpectStatementsEqual(stmt, back);
  }
}

TEST(WalFormatTest, FramedLogRoundTrip) {
  std::string log;
  const std::vector<WalStatement> stmts = SampleStatements();
  for (const WalStatement& stmt : stmts) {
    std::string payload;
    durability::EncodeStatement(stmt, &payload);
    AppendFrame(&log, Slice(payload));
  }
  WalScan scan;
  ScanWal(Slice(log), &scan);
  EXPECT_TRUE(scan.tail.ok()) << scan.tail.ToString();
  EXPECT_EQ(scan.clean_bytes, log.size());
  ASSERT_EQ(scan.records.size(), stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    ExpectStatementsEqual(stmts[i], scan.records[i]);
  }
}

// The scan-level crash contract: EVERY byte prefix of a valid log either
// ends exactly on a frame boundary (tail OK) or reports kDataLoss at the
// last boundary — and the records before the cut are untouched.
TEST(WalFormatTest, EveryPrefixReplaysCleanlyOrReportsDataLoss) {
  std::string log;
  std::vector<size_t> boundaries = {0};
  const std::vector<WalStatement> stmts = SampleStatements();
  for (const WalStatement& stmt : stmts) {
    std::string payload;
    durability::EncodeStatement(stmt, &payload);
    AppendFrame(&log, Slice(payload));
    boundaries.push_back(log.size());
  }
  for (size_t p = 0; p <= log.size(); ++p) {
    WalScan scan;
    ScanWal(Slice(log.data(), p), &scan);
    // Number of whole frames inside the prefix.
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= p) {
      ++whole;
    }
    ASSERT_EQ(scan.records.size(), whole) << "prefix " << p;
    ASSERT_EQ(scan.clean_bytes, boundaries[whole]) << "prefix " << p;
    if (p == boundaries[whole]) {
      EXPECT_TRUE(scan.tail.ok()) << "prefix " << p;
    } else {
      EXPECT_TRUE(scan.tail.IsDataLoss())
          << "prefix " << p << ": " << scan.tail.ToString();
    }
  }
}

// A bit flip inside a COMPLETE frame is corruption, not a torn tail —
// recovery must stop hard rather than silently truncate history.
TEST(WalFormatTest, BitFlipInCompleteFrameIsCorruption) {
  std::string log;
  for (const WalStatement& stmt : SampleStatements()) {
    std::string payload;
    durability::EncodeStatement(stmt, &payload);
    AppendFrame(&log, Slice(payload));
  }
  // Flip one bit in the payload area of the middle frame. (Flipping
  // length-prefix bytes can also masquerade as a torn tail, which is an
  // acceptable outcome for a *tail* frame only — here we target payload
  // bytes of an interior frame, which must always be caught.)
  WalScan clean;
  ScanWal(Slice(log), &clean);
  ASSERT_TRUE(clean.tail.ok());
  for (size_t pos : {9ul, log.size() / 2, log.size() - 1}) {
    std::string flipped = log;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    WalScan scan;
    ScanWal(Slice(flipped), &scan);
    EXPECT_FALSE(scan.tail.ok()) << "bit flip at " << pos;
    EXPECT_LT(scan.records.size(), clean.records.size());
  }
}

// --- group commit -------------------------------------------------------

TEST(LogWriterTest, GroupCommitAcksEveryStatementDurably) {
  const std::string dir = TestDir("group_commit");
  const std::string path = dir + "/wal-0-00000001.log";
  std::unique_ptr<durability::WalFile> file;
  ASSERT_TRUE(durability::OpenPosixWalFile(path, &file).ok());
  durability::LogWriter writer(std::move(file),
                               durability::SyncMode::kGroupCommit);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        WalStatement stmt;
        stmt.kind = StatementKind::kDelete;
        stmt.seq = static_cast<uint64_t>(t * kPerThread + i + 1);
        stmt.commit_ts = stmt.seq;
        stmt.table = "docs";
        stmt.pk = stmt.seq;
        std::string payload, frame;
        durability::EncodeStatement(stmt, &payload);
        AppendFrame(&frame, Slice(payload));
        const uint64_t ticket = writer.Append(Slice(frame));
        if (!writer.WaitDurable(ticket).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(writer.Stop().ok());

  WalScan scan;
  ASSERT_TRUE(durability::ReadWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(LogWriterTest, ErrorsAreSticky) {
  auto injector = std::make_shared<FaultInjector>();
  const std::string dir = TestDir("sticky");
  auto factory = durability::FaultInjectingFactory(injector);
  std::unique_ptr<durability::WalFile> file;
  ASSERT_TRUE(factory(dir + "/wal-0-00000001.log", &file).ok());
  durability::LogWriter writer(std::move(file),
                               durability::SyncMode::kSyncEachStatement);
  ASSERT_TRUE(writer.WaitDurable(writer.Append(Slice("ok"))).ok());
  injector->FailAfter(FaultInjector::Op::kWrite, 0);
  EXPECT_FALSE(writer.WaitDurable(writer.Append(Slice("boom"))).ok());
  // Dead for good, even though the injector would now allow the IO.
  injector->Reset();
  EXPECT_FALSE(writer.WaitDurable(writer.Append(Slice("after"))).ok());
  EXPECT_FALSE(writer.Stop().ok());
}

// --- fault injection + torn-tail repair --------------------------------

TEST(FaultInjectionTest, ShortWriteLeavesTornTailThatRecoveryTruncates) {
  auto injector = std::make_shared<FaultInjector>();
  const std::string dir = TestDir("torn");
  const std::string path = durability::WalSegmentPath(dir, 0, 1);
  auto factory = durability::FaultInjectingFactory(injector);
  std::unique_ptr<durability::WalFile> file;
  ASSERT_TRUE(factory(path, &file).ok());
  std::string frame;
  {
    WalStatement stmt;
    stmt.kind = StatementKind::kDelete;
    stmt.seq = 1;
    stmt.commit_ts = 1;
    stmt.table = "docs";
    stmt.pk = 1;
    std::string payload;
    durability::EncodeStatement(stmt, &payload);
    AppendFrame(&frame, Slice(payload));
  }
  ASSERT_TRUE(file->Append(Slice(frame)).ok());
  // Second append tears mid-frame: a prefix lands, then the crash.
  injector->FailAfter(FaultInjector::Op::kWrite, 0, /*short_write=*/true);
  ASSERT_FALSE(file->Append(Slice(frame)).ok());
  (void)file->Close();
  injector->Reset();

  durability::WalRecovery rec;
  std::vector<durability::SegmentInfo> segs = {{0, 1, path}};
  ASSERT_TRUE(durability::RecoverWalRecords(segs, 0, &rec).ok());
  EXPECT_EQ(rec.records.size(), 1u);
  EXPECT_GT(rec.torn_tail_bytes, 0u);
  // After truncation the file scans clean.
  WalScan scan;
  ASSERT_TRUE(durability::ReadWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.tail.ok());
  EXPECT_EQ(scan.records.size(), 1u);
}

// --- satellite: PageStore::Sync + Stop() hardening ---------------------

TEST(PageStoreSyncTest, FilePageStoreSyncSucceeds) {
  const std::string dir = TestDir("pagestore");
  auto r = storage::FilePageStore::Create(dir + "/pages.db", 4096);
  ASSERT_TRUE(r.ok());
  auto store = std::move(r).value();
  auto page = store->Allocate();
  ASSERT_TRUE(page.ok());
  std::string buf(4096, 'x');
  ASSERT_TRUE(store->Write(page.value(), buf.data()).ok());
  EXPECT_TRUE(store->Sync().ok());
}

TEST(EngineLifecycleTest, StopIsIdempotentAndSafeBeforeStart) {
  core::SvrEngineOptions options;
  auto r = core::SvrEngine::Open(options);
  ASSERT_TRUE(r.ok());
  auto engine = std::move(r).value();
  engine->Stop();  // never started — must be a no-op, not a crash
  engine->Stop();  // and idempotent
  ASSERT_TRUE(engine
                  ->CreateTable("t", Schema({{"id", ValueType::kInt64}}, 0))
                  .ok());
  ASSERT_TRUE(engine->Insert("t", {Value::Int(1)}).ok());
  engine->Stop();
}

TEST(EngineLifecycleTest, DurabilityRejectsCustomAggFunctions) {
  const std::string dir = TestDir("custom_agg");
  core::SvrEngineOptions options;
  options.durability.enabled = true;
  options.durability.dir = dir;
  auto r = core::SvrEngine::Open(options);
  ASSERT_TRUE(r.ok());
  auto engine = std::move(r).value();
  ASSERT_TRUE(engine
                  ->CreateTable("docs", Schema({{"id", ValueType::kInt64},
                                                {"text", ValueType::kString}},
                                               0))
                  .ok());
  ASSERT_TRUE(engine
                  ->CreateTable("scores", Schema({{"id", ValueType::kInt64},
                                                  {"val", ValueType::kDouble}},
                                                 0))
                  .ok());
  const Status st = engine->CreateTextIndex(
      "docs", "text",
      {{"S1", "scores", "id", "val", relational::AggregateKind::kValue}},
      relational::AggFunction::Custom(
          [](const std::vector<double>& vs) { return vs[0]; }));
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
  engine->Stop();
}

// --- clean persist -> recover cycles -----------------------------------

/// No-crash RunKillRecover: the crash point lies beyond the workload, so
/// every op acks, the engine restarts from disk, and the recovered state
/// must match the shadow replay and the oracle.
TEST(RecoveryTest, CleanRestartRecoversEverything) {
  workload::CrashRecoveryConfig config;
  config.dir = TestDir("clean_restart");
  config.crash_after_ops = 1u << 30;  // never trips
  auto r = workload::RunKillRecover(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().crashed);
  EXPECT_EQ(r.value().acked_ops, r.value().recovered_ops);
  EXPECT_EQ(r.value().mismatches, 0u);
  EXPECT_GT(r.value().oracle_checks, 0u);
  EXPECT_FALSE(r.value().recovery.used_checkpoint);
}

TEST(RecoveryTest, CheckpointCoversPrefixAndRecoveryUsesIt) {
  workload::CrashRecoveryConfig config;
  config.dir = TestDir("with_checkpoint");
  config.crash_after_ops = 1u << 30;
  config.checkpoint_after_ops = 100;  // explicit CheckpointNow mid-churn
  auto r = workload::RunKillRecover(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().mismatches, 0u);
  EXPECT_TRUE(r.value().recovery.used_checkpoint);
  // The checkpoint supersedes the covered WAL prefix, so replay touches
  // only the suffix.
  EXPECT_LT(r.value().recovery.wal_records_replayed,
            r.value().recovered_ops);
}

TEST(RecoveryTest, BackgroundCheckpointThreadCoversTheLog) {
  workload::CrashRecoveryConfig config;
  config.dir = TestDir("bg_checkpoint");
  config.crash_after_ops = 1u << 30;
  config.checkpoint_interval_statements = 150;
  auto r = workload::RunKillRecover(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().mismatches, 0u);
}

// --- sharded persist -> recover ----------------------------------------

core::ShardedSvrEngineOptions ShardedDurableOptions(const std::string& dir,
                                                    uint32_t shards) {
  core::ShardedSvrEngineOptions options;
  options.num_shards = shards;
  options.durability.enabled = true;
  options.durability.dir = dir;
  return options;
}

Status LoadShardedFixture(core::ShardedSvrEngine* engine, int docs) {
  SVR_RETURN_NOT_OK(engine->CreateTable(
      "docs",
      Schema({{"id", ValueType::kInt64}, {"text", ValueType::kString}}, 0)));
  SVR_RETURN_NOT_OK(engine->CreateTable(
      "scores",
      Schema({{"id", ValueType::kInt64}, {"val", ValueType::kDouble}}, 0)));
  for (int d = 0; d < docs; ++d) {
    const std::string text =
        "w" + std::to_string(d % 7) + " w" + std::to_string(d % 13) +
        " common";
    SVR_RETURN_NOT_OK(
        engine->Insert("docs", {Value::Int(d), Value::String(text)}));
    SVR_RETURN_NOT_OK(engine->Insert(
        "scores", {Value::Int(d), Value::Double(1000.0 - d)}));
  }
  SVR_RETURN_NOT_OK(engine->CreateTextIndex(
      "docs", "text",
      {{"S1", "scores", "id", "val", relational::AggregateKind::kValue}},
      relational::AggFunction::WeightedSum({1.0})));
  // Post-index churn so the WAL holds every statement kind.
  for (int d = 0; d < docs; d += 5) {
    SVR_RETURN_NOT_OK(engine->Update(
        "scores", {Value::Int(d), Value::Double(5000.0 + d)}));
  }
  for (int d = 3; d < docs; d += 11) {
    SVR_RETURN_NOT_OK(engine->Delete("docs", d));
  }
  return Status::OK();
}

std::vector<std::pair<int64_t, double>> TopDocs(
    core::ShardedSvrEngine* engine, const std::string& q, size_t k) {
  auto r = engine->Search(q, k);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<std::pair<int64_t, double>> out;
  if (!r.ok()) return out;
  for (const auto& row : r.value()) out.emplace_back(row.pk, row.score);
  return out;
}

TEST(ShardedRecoveryTest, RecoversAcrossRestartEvenWithDifferentShardCount) {
  const std::string dir = TestDir("sharded");
  constexpr int kDocs = 120;
  std::vector<std::pair<int64_t, double>> before;
  {
    auto r = core::ShardedSvrEngine::Open(ShardedDurableOptions(dir, 3));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto engine = std::move(r).value();
    ASSERT_TRUE(LoadShardedFixture(engine.get(), kDocs).ok());
    ASSERT_TRUE(engine->CheckpointNow().ok());
    // More churn after the checkpoint: recovery must stitch checkpoint
    // + WAL suffix together.
    for (int d = 1; d < kDocs; d += 9) {
      if (d % 11 == 3) continue;  // deleted above
      ASSERT_TRUE(engine
                      ->Update("scores",
                               {Value::Int(d), Value::Double(9000.0 + d)})
                      .ok());
    }
    before = TopDocs(engine.get(), "common", 15);
    engine->Stop();
  }
  ASSERT_FALSE(before.empty());
  for (uint32_t shards : {3u, 5u}) {
    auto r =
        core::ShardedSvrEngine::Open(ShardedDurableOptions(dir, shards));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto engine = std::move(r).value();
    EXPECT_TRUE(engine->recovery_stats().used_checkpoint);
    EXPECT_EQ(TopDocs(engine.get(), "common", 15), before)
        << "shards=" << shards;
    // The recovered engine keeps working: route a fresh insert.
    const Status fresh = engine->Insert(
        "docs", {Value::Int(100000 + shards), Value::String("common")});
    ASSERT_TRUE(fresh.ok()) << "shards=" << shards << ": "
                            << fresh.ToString();
    engine->Stop();
    // Leave the directory as this instance wrote it for the next count.
  }
}

TEST(ShardedRecoveryTest, KillAndRecoverMidChurn) {
  const std::string dir = TestDir("sharded_kill");
  auto injector = std::make_shared<FaultInjector>();
  core::ShardedSvrEngineOptions options = ShardedDurableOptions(dir, 3);
  options.durability.file_factory =
      durability::FaultInjectingFactory(injector);
  constexpr int kDocs = 100;
  uint64_t acked = 0;
  {
    auto r = core::ShardedSvrEngine::Open(options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto engine = std::move(r).value();
    ASSERT_TRUE(LoadShardedFixture(engine.get(), kDocs).ok());
    injector->FailAfter(FaultInjector::Op::kWrite, 120,
                        /*short_write=*/true);
    for (int d = 0;; d = (d + 1) % kDocs) {
      if (d % 11 == 3) continue;
      const Status st = engine->Update(
          "scores",
          {Value::Int(d), Value::Double(100.0 + acked)});
      if (!st.ok()) break;
      ++acked;
      ASSERT_LT(acked, 100000u) << "injector never tripped";
    }
    ASSERT_TRUE(injector->crashed());
    engine->Stop();
  }
  injector->Reset();
  auto r = core::ShardedSvrEngine::Open(options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto engine = std::move(r).value();
  const auto& stats = engine->recovery_stats();
  // Setup statements: 3 DDL + 2*kDocs inserts + kDocs/5 updates +
  // ceil((kDocs-3)/11) deletes; every acked churn op must be there too.
  const uint64_t setup = 3 + 2ull * kDocs + (kDocs + 4) / 5 + 9;
  EXPECT_GE(stats.recovered_seq, setup + acked);
  engine->Stop();
}

// --- the kill-and-recover sweep ----------------------------------------

/// >= 20 randomized crash points across all five query methods and every
/// fault class: WAL write, WAL fsync, torn (short) write, mid-checkpoint,
/// background-checkpoint races. Every run must recover all acked ops and
/// answer queries exactly like the shadow replay AND the brute-force
/// oracle. This is the acceptance gate of the durability subsystem.
TEST(KillRecoverSweepTest, AllMethodsAllFaultClasses) {
  const index::Method kMethods[] = {
      index::Method::kId,          index::Method::kIdTermScore,
      index::Method::kChunk,       index::Method::kChunkTermScore,
      index::Method::kScoreThreshold,
  };
  struct FaultCase {
    FaultInjector::Op op;
    uint64_t after;
    bool short_write;
    uint32_t checkpoint_after;
  };
  const FaultCase kFaults[] = {
      {FaultInjector::Op::kWrite, 17, false, 0},   // early WAL write
      {FaultInjector::Op::kWrite, 173, true, 0},   // torn frame tail
      {FaultInjector::Op::kSync, 61, false, 0},    // fsync death
      {FaultInjector::Op::kWrite, 140, false, 60}, // mid/near checkpoint
  };
  int crashes = 0;
  for (index::Method method : kMethods) {
    for (size_t f = 0; f < sizeof(kFaults) / sizeof(kFaults[0]); ++f) {
      const FaultCase& fault = kFaults[f];
      workload::CrashRecoveryConfig config;
      config.dir = TestDir("sweep");
      config.method = method;
      config.seed = 2005 + 37 * f +
                    static_cast<uint64_t>(method) * 1009;
      config.crash_op = fault.op;
      config.crash_after_ops = fault.after;
      config.short_write = fault.short_write;
      config.checkpoint_after_ops = fault.checkpoint_after;
      auto r = workload::RunKillRecover(config);
      ASSERT_TRUE(r.ok())
          << index::MethodName(method) << " fault " << f << ": "
          << r.status().ToString();
      const auto& result = r.value();
      EXPECT_TRUE(result.crashed)
          << index::MethodName(method) << " fault " << f
          << " never tripped";
      EXPECT_EQ(result.mismatches, 0u)
          << index::MethodName(method) << " fault " << f;
      EXPECT_GT(result.oracle_checks, 0u);
      EXPECT_GE(result.recovered_ops, result.acked_ops);
      if (result.crashed) ++crashes;
    }
  }
  EXPECT_GE(crashes, 20);
}

// Regression (PR 7 static-analysis sweep): last_checkpoint_error() used
// to reach ckpt_mu_ through a const_cast on a plain std::mutex — legal
// by accident, invisible to any checker. It now takes a real MutexLock
// on a mutable annotated Mutex; this polls it from other threads while
// the checkpointer runs against live DML, so the TSan/ASan legs cover
// the access pattern the const_cast hid.
TEST(EngineLifecycleTest, CheckpointErrorReadableWhileCheckpointing) {
  const std::string dir = TestDir("ckpt_error_probe");
  core::SvrEngineOptions options;
  options.durability.enabled = true;
  options.durability.dir = dir;
  options.durability.checkpoint_interval_statements = 25;
  options.durability.checkpoint_poll_ms = 1;
  auto r = core::SvrEngine::Open(options);
  ASSERT_TRUE(r.ok());
  auto engine = std::move(r).value();
  ASSERT_TRUE(engine
                  ->CreateTable("t", Schema({{"id", ValueType::kInt64}}, 0))
                  .ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> probes;
  for (int t = 0; t < 2; ++t) {
    probes.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_TRUE(engine->last_checkpoint_error().ok());
      }
    });
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine->Insert("t", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(engine->CheckpointNow().ok());
  stop.store(true, std::memory_order_relaxed);
  for (auto& p : probes) p.join();
  EXPECT_TRUE(engine->last_checkpoint_error().ok());
  engine->Stop();
}

// --- fuzz-derived properties (fuzz/fuzz_wal_frame.cc) -------------------
//
// The WAL fuzz harness checks these as trap-on-violation invariants; the
// tests below pin the same contract in the regular suite with the
// harness's deterministic mutator, so a decoder regression fails tier-1
// without needing the fuzz leg.

TEST(WalFuzzPropertyTest, FramedPayloadScansExactlyOrRejects) {
  // Any byte string framed as a payload either replays as one record
  // (payload parses) or stops the scan with kCorruption — never a
  // partial read, never a crash.
  uint64_t rng = 0x5eedf00ddeadbeefULL;
  std::string payload;
  {
    WalStatement s;
    s.kind = StatementKind::kInsert;
    s.seq = 9;
    s.table = "docs";
    durability::EncodeStatement(s, &payload);
  }
  for (int i = 0; i < 500; ++i) {
    svr::fuzz::Mutate(&payload, &rng);
    std::string framed;
    AppendFrame(&framed, Slice(payload));
    ASSERT_EQ(durability::FramedSize(payload.size()), framed.size());
    WalStatement decoded;
    const Status decode_st =
        durability::DecodeStatement(Slice(payload), &decoded);
    WalScan full;
    ScanWal(Slice(framed), &full);
    if (decode_st.ok()) {
      EXPECT_TRUE(full.tail.ok());
      EXPECT_EQ(full.records.size(), 1u);
      EXPECT_EQ(full.clean_bytes, framed.size());
    } else {
      EXPECT_TRUE(full.tail.IsCorruption());
      EXPECT_TRUE(full.records.empty());
    }
  }
}

TEST(WalFuzzPropertyTest, TornFramePrefixIsNeverCorruption) {
  // A strict byte prefix of a single frame can tear it but must never
  // mis-checksum it: the scan reports a clean empty log or kDataLoss.
  std::string payload = "arbitrary payload bytes \x00\x7f\xff";
  std::string framed;
  AppendFrame(&framed, Slice(payload));
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    WalScan scan;
    ScanWal(Slice(framed.data(), cut), &scan);
    EXPECT_TRUE(scan.tail.ok() || scan.tail.IsDataLoss()) << "cut=" << cut;
    EXPECT_TRUE(scan.records.empty()) << "cut=" << cut;
    EXPECT_EQ(scan.clean_bytes, 0u) << "cut=" << cut;
  }
}

TEST(WalFuzzPropertyTest, MutatedLogScanStaysInBounds) {
  // clean_bytes never exceeds the input, and every accepted record
  // re-encodes (checkpoints re-emit recovered statements verbatim).
  std::string log;
  for (const WalStatement& s : SampleStatements()) {
    std::string payload;
    durability::EncodeStatement(s, &payload);
    AppendFrame(&log, Slice(payload));
  }
  uint64_t rng = 0x0123456789abcdefULL;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = log;
    for (int s = 0; s < 1 + i % 8; ++s) svr::fuzz::Mutate(&mutated, &rng);
    WalScan scan;
    ScanWal(Slice(mutated), &scan);
    ASSERT_LE(scan.clean_bytes, mutated.size());
    for (const WalStatement& r : scan.records) {
      std::string reencoded;
      durability::EncodeStatement(r, &reencoded);
      EXPECT_FALSE(reencoded.empty());
    }
  }
}

}  // namespace
}  // namespace svr::test
