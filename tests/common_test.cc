#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/key_codec.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/zipf.h"

namespace svr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing doc").ToString(),
            "NotFound: missing doc");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    SVR_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("hello");
    return Status::Internal("boom");
  };
  auto user = [&](bool ok) -> Status {
    SVR_ASSIGN_OR_RETURN(std::string v, make(ok));
    EXPECT_EQ(v, "hello");
    return Status::OK();
  };
  EXPECT_TRUE(user(true).ok());
  EXPECT_TRUE(user(false).IsInternal());
}

TEST(SliceTest, BasicAccessors) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[1], 'b');
  EXPECT_EQ(s.ToString(), "abc");
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("hello world");
  EXPECT_TRUE(s.starts_with("hello"));
  EXPECT_FALSE(s.starts_with("world"));
  s.remove_prefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, UINT32_MAX);
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 1u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), 0xDEADBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 12), UINT32_MAX);
}

TEST(CodingTest, Fixed64AndDoubleRoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  PutFixedDouble(&buf, 3.14159);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(DecodeFixedDouble(buf.data() + 8), 3.14159);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,       1,        127,        128,
                            16383,   16384,    (1u << 21) - 1,
                            1u << 21, UINT32_MAX, (1ull << 35),
                            UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  Slice in(buf);
  uint32_t out;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1u << 30);
  buf.pop_back();
  Slice in(buf);
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, ZigzagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -123456};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode64(ZigzagEncode64(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LE(ZigzagEncode64(-1), 2u);
  EXPECT_LE(ZigzagEncode64(1), 2u);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("alpha"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("beta"));
  Slice in(buf);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.ToString(), "alpha");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.ToString(), "beta");
  EXPECT_TRUE(in.empty());
}

// --- key codec: memcmp order must equal numeric order -----------------

template <typename Put>
std::string EncodeOne(Put put, double v) {
  std::string s;
  put(&s, v);
  return s;
}

TEST(KeyCodecTest, U32AscendingOrder) {
  const uint32_t vals[] = {0, 1, 2, 255, 256, 65535, 1u << 20, UINT32_MAX};
  std::string prev;
  for (uint32_t v : vals) {
    std::string cur;
    PutKeyU32(&cur, v);
    if (!prev.empty()) {
      EXPECT_LT(prev, cur) << v;
    }
    Slice in(cur);
    uint32_t out;
    ASSERT_TRUE(GetKeyU32(&in, &out));
    EXPECT_EQ(out, v);
    prev = cur;
  }
}

TEST(KeyCodecTest, U32DescendingOrder) {
  const uint32_t vals[] = {0, 1, 255, 65535, UINT32_MAX};
  std::string prev;
  for (uint32_t v : vals) {
    std::string cur;
    PutKeyU32Desc(&cur, v);
    if (!prev.empty()) {
      EXPECT_GT(prev, cur) << v;
    }
    Slice in(cur);
    uint32_t out;
    ASSERT_TRUE(GetKeyU32Desc(&in, &out));
    EXPECT_EQ(out, v);
    prev = cur;
  }
}

TEST(KeyCodecTest, U64RoundTripAndOrder) {
  const uint64_t vals[] = {0, 1, UINT32_MAX, 1ull << 40, UINT64_MAX};
  std::string prev_asc, prev_desc;
  for (uint64_t v : vals) {
    std::string asc, desc;
    PutKeyU64(&asc, v);
    PutKeyU64Desc(&desc, v);
    if (!prev_asc.empty()) {
      EXPECT_LT(prev_asc, asc);
      EXPECT_GT(prev_desc, desc);
    }
    Slice ia(asc), id(desc);
    uint64_t oa, od;
    ASSERT_TRUE(GetKeyU64(&ia, &oa));
    ASSERT_TRUE(GetKeyU64Desc(&id, &od));
    EXPECT_EQ(oa, v);
    EXPECT_EQ(od, v);
    prev_asc = asc;
    prev_desc = desc;
  }
}

TEST(KeyCodecTest, DoubleOrderIncludingNegativesAndZero) {
  const double vals[] = {-1e300, -42.5, -1.0, -1e-300, 0.0,
                         1e-300, 1.0,   42.5, 87.13,  1e300};
  std::string prev;
  for (double v : vals) {
    std::string cur;
    PutKeyDouble(&cur, v);
    if (!prev.empty()) {
      EXPECT_LT(prev, cur) << v;
    }
    Slice in(cur);
    double out;
    ASSERT_TRUE(GetKeyDouble(&in, &out));
    EXPECT_DOUBLE_EQ(out, v);
    prev = cur;
  }
}

TEST(KeyCodecTest, DoubleDescendingOrder) {
  const double vals[] = {-5.0, 0.0, 0.5, 100.0, 1e9};
  std::string prev;
  for (double v : vals) {
    std::string cur;
    PutKeyDoubleDesc(&cur, v);
    if (!prev.empty()) {
      EXPECT_GT(prev, cur) << v;
    }
    Slice in(cur);
    double out;
    ASSERT_TRUE(GetKeyDoubleDesc(&in, &out));
    EXPECT_DOUBLE_EQ(out, v);
    prev = cur;
  }
}

TEST(KeyCodecTest, RandomizedDoubleOrderProperty) {
  Random rng(2005);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.UniformDouble(-1e6, 1e6);
    double b = rng.UniformDouble(-1e6, 1e6);
    std::string ka, kb;
    PutKeyDouble(&ka, a);
    PutKeyDouble(&kb, b);
    EXPECT_EQ(a < b, ka < kb) << a << " vs " << b;
  }
}

TEST(KeyCodecTest, CompositeKeyOrder) {
  // (term asc, score desc, doc asc) — the short-list key shape.
  auto make = [](uint32_t term, double score, uint32_t doc) {
    std::string k;
    PutKeyU32(&k, term);
    PutKeyDoubleDesc(&k, score);
    PutKeyU32(&k, doc);
    return k;
  };
  EXPECT_LT(make(1, 50.0, 9), make(2, 99.0, 0));  // term dominates
  EXPECT_LT(make(1, 90.0, 9), make(1, 50.0, 0));  // higher score first
  EXPECT_LT(make(1, 50.0, 3), make(1, 50.0, 4));  // doc breaks ties
}

// --- random / zipf -----------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
}

TEST(RandomTest, UniformInRange) {
  Random rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double u = rng.UniformDouble(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution z(1000, 0.75);
  double total = 0;
  for (size_t i = 0; i < 1000; ++i) total += z.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution z(100, 1.0);
  EXPECT_GT(z.Probability(0), z.Probability(1));
  EXPECT_GT(z.Probability(1), z.Probability(50));
  Random rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[z.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 20000 / 100);  // clearly above uniform share
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfDistribution z(10, 0.0);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(z.Probability(i), 0.1, 1e-9);
  }
}

TEST(ZipfTest, SampleCoversSupport) {
  ZipfDistribution z(5, 0.5);
  Random rng(3);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5000; ++i) seen[z.Sample(&rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace svr
