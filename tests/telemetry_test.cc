// Telemetry tests (docs/observability.md):
//  - Log-bucketed histogram invariants: bucket boundaries and the
//    <=6.25% quantization bound, empty snapshots, merge associativity,
//    and a multi-threaded ShardedHistogram fold equal to a
//    single-threaded reference over the same values.
//  - The metrics registry's JSON and Prometheus dumps, including
//    additive gauge registration.
//  - Engine plumbing: a traced Search returns result-for-result what an
//    untraced one does, slow queries land in the ring with a complete
//    stage trace, DumpMetrics round-trips both formats, and the sharded
//    engine's trace carries one span per shard. (A TSan target in
//    ci.sh.)

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/sharded_engine.h"
#include "core/svr_engine.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/query_trace.h"
#include "telemetry/slow_query_log.h"
#include "workload/concurrent_driver.h"

namespace svr {
namespace {

using telemetry::HistBucketIndex;
using telemetry::HistBucketUpperBound;
using telemetry::HistogramSnapshot;
using telemetry::LocalHistogram;
using telemetry::ShardedHistogram;

// --- bucket scheme -----------------------------------------------------

TEST(HistogramBucketsTest, LinearRangeIsExact) {
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(HistBucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(HistBucketUpperBound(static_cast<size_t>(v)), v);
  }
}

TEST(HistogramBucketsTest, IndexIsMonotoneAndBoundsAreTight) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 100000; v += 13) {
    const size_t b = HistBucketIndex(v);
    EXPECT_GE(b, prev) << "index must be monotone in v (v=" << v << ")";
    prev = b;
    const uint64_t upper = HistBucketUpperBound(b);
    EXPECT_GE(upper, v) << "reported edge must never understate v";
    EXPECT_EQ(HistBucketIndex(upper), b)
        << "upper edge must map back to its own bucket";
    if (v >= 32) {
      // The sub-bucket split bounds relative quantization error by 1/16.
      EXPECT_LE(static_cast<double>(upper - v), static_cast<double>(v) / 16.0 + 1.0)
          << "v=" << v << " upper=" << upper;
    }
  }
}

TEST(HistogramBucketsTest, HugeValuesClampIntoLastBucket) {
  const size_t last = telemetry::kHistNumBuckets - 1;
  EXPECT_EQ(HistBucketIndex(~0ull), last);
  LocalHistogram h;
  h.Record(~0ull);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, ~0ull) << "max keeps the true value past the clamp";
}

// --- snapshots and merging --------------------------------------------

TEST(HistogramSnapshotTest, EmptySnapshot) {
  LocalHistogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.ValueAtPercentile(50.0), 0u);
  // Merging an empty snapshot is the identity.
  HistogramSnapshot other;
  other.Merge(s);
  EXPECT_TRUE(other.empty());
}

TEST(HistogramSnapshotTest, MergeIsAssociativeAndEqualsOneBigFold) {
  Random rng(11);
  LocalHistogram a, b, c, all;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.Uniform(1u << 20);
    all.Record(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Record(v);
  }
  HistogramSnapshot left = a.Snapshot();   // (a + b) + c
  left.Merge(b.Snapshot());
  left.Merge(c.Snapshot());
  HistogramSnapshot bc = b.Snapshot();     // a + (b + c)
  bc.Merge(c.Snapshot());
  HistogramSnapshot right = a.Snapshot();
  right.Merge(bc);
  const HistogramSnapshot ref = all.Snapshot();
  for (const HistogramSnapshot* s : {&left, &right}) {
    EXPECT_EQ(s->count, ref.count);
    EXPECT_EQ(s->sum, ref.sum);
    EXPECT_EQ(s->max, ref.max);
    EXPECT_EQ(s->buckets, ref.buckets);
  }
}

TEST(HistogramSnapshotTest, PercentilesWithinQuantizationBound) {
  LocalHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  for (double p : {50.0, 95.0, 99.0}) {
    const uint64_t exact = static_cast<uint64_t>(p / 100.0 * 10000.0);
    const uint64_t got = s.ValueAtPercentile(p);
    EXPECT_GE(got, exact) << "p" << p;
    EXPECT_LE(static_cast<double>(got),
              static_cast<double>(exact) * (1.0 + 1.0 / 16.0) + 1.0)
        << "p" << p;
  }
  EXPECT_EQ(s.ValueAtPercentile(100.0), s.ValueAtPercentile(99.999));
}

TEST(ShardedHistogramTest, ConcurrentRecordMatchesSingleThreadReference) {
  // N threads hammer one ShardedHistogram with deterministic per-thread
  // streams; a LocalHistogram records the identical multiset single-
  // threaded. The folds must agree exactly — nothing lost, nothing
  // double-counted.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  ShardedHistogram sharded;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Record(rng.Uniform(1u << 22));
      }
    });
  }
  for (auto& t : threads) t.join();

  LocalHistogram reference;
  for (int t = 0; t < kThreads; ++t) {
    Random rng(1000 + t);
    for (int i = 0; i < kPerThread; ++i) {
      reference.Record(rng.Uniform(1u << 22));
    }
  }
  const HistogramSnapshot got = sharded.Snapshot();
  const HistogramSnapshot want = reference.Snapshot();
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.sum, want.sum);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(got.buckets, want.buckets);
}

// --- registry dumps ----------------------------------------------------

TEST(MetricsRegistryTest, JsonAndPrometheusDumps) {
  telemetry::MetricsRegistry reg;
  reg.GetCounter("test.ops")->Increment(7);
  reg.GetHistogram("test.latency_us")->Record(100);
  reg.GetHistogram("test.latency_us")->Record(200);
  // Additive gauges: two registrations under one name sum at dump time
  // (how per-shard engines sharing a registry aggregate).
  reg.RegisterGauge("test.depth", [] { return 2.0; });
  reg.RegisterGauge("test.depth", [] { return 3.0; });

  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.ops\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.depth\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 300"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);

  const std::string prom = reg.DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE svr_test_ops counter"), std::string::npos);
  EXPECT_NE(prom.find("svr_test_ops 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE svr_test_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("svr_test_depth 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE svr_test_latency_us summary"),
            std::string::npos);
  EXPECT_NE(prom.find("svr_test_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("svr_test_latency_us_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, PeriodicDumpDeliversAndStops) {
  telemetry::MetricsRegistry reg;
  reg.GetCounter("tick")->Increment();
  std::atomic<int> dumps{0};
  reg.StartPeriodicDump(5, telemetry::DumpFormat::kJson,
                        [&dumps](const std::string& s) {
                          EXPECT_NE(s.find("\"tick\""), std::string::npos);
                          dumps.fetch_add(1);
                        });
  while (dumps.load() < 2) std::this_thread::yield();
  reg.StopPeriodicDump();
  const int after_stop = dumps.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(dumps.load(), after_stop) << "no dumps after stop";
}

// --- slow-query log ----------------------------------------------------

TEST(SlowQueryLogTest, ThresholdAndRingEviction) {
  telemetry::SlowQueryLog log(/*capacity=*/2, /*threshold_us=*/100);
  telemetry::QueryTrace t;
  t.total_us = 99;
  EXPECT_FALSE(log.MaybeRecord(t));
  for (uint64_t us : {100, 200, 300}) {
    t.total_us = us;
    t.keywords = "q" + std::to_string(us);
    EXPECT_TRUE(log.MaybeRecord(t));
  }
  EXPECT_EQ(log.total_recorded(), 3u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u) << "capacity evicts oldest";
  EXPECT_EQ(entries[0].keywords, "q200");
  EXPECT_EQ(entries[1].keywords, "q300");
}

// --- engine plumbing ---------------------------------------------------

workload::ConcurrentChurnConfig SmallConfig() {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 400;
  cfg.vocab = 300;
  cfg.terms_per_doc = 12;
  return cfg;
}

TEST(EngineTelemetryTest, TracedSearchMatchesUntraced) {
  core::SvrEngineOptions opt;
  opt.telemetry.enabled = true;
  auto engine_r = workload::SetupChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();

  for (const std::string q : {"t1 t2", "t3", "t0 t1 t4"}) {
    auto plain = engine->Search(q, 10);
    telemetry::QueryTrace trace;
    auto traced = engine->Search(q, 10, true, &trace);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    const auto& a = plain.value();
    const auto& b = traced.value();
    ASSERT_EQ(a.size(), b.size()) << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].pk, b[i].pk) << q << " @" << i;
      EXPECT_EQ(a[i].score, b[i].score) << q << " @" << i;
    }
    EXPECT_EQ(trace.keywords, q);
    EXPECT_EQ(trace.k, 10u);
    EXPECT_EQ(trace.results, b.size());
    EXPECT_GE(trace.total_us,
              trace.term_resolve_us)  // total covers every stage
        << q;
  }
  engine->Stop();
}

TEST(EngineTelemetryTest, SlowQueryLandsInLogWithCompleteTrace) {
  core::SvrEngineOptions opt;
  opt.telemetry.enabled = true;
  // Threshold 0: every query "crosses" it, so the capture path is
  // exercised deterministically.
  opt.telemetry.slow_query_threshold_us = 0;
  opt.telemetry.slow_query_log_capacity = 4;
  auto engine_r = workload::SetupChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();

  auto r = engine->Search("t1 t2", 5);
  ASSERT_TRUE(r.ok());
  telemetry::SlowQueryLog* log = engine->slow_query_log();
  ASSERT_NE(log, nullptr);
  ASSERT_GE(log->total_recorded(), 1u);
  const auto entries = log->Entries();
  ASSERT_FALSE(entries.empty());
  const telemetry::QueryTrace& t = entries.back();
  EXPECT_EQ(t.keywords, "t1 t2");
  EXPECT_EQ(t.k, 5u);
  EXPECT_EQ(t.results, r.value().size());
  EXPECT_FALSE(t.ToString().empty());
  // The slow counter moved with it.
  const std::string json = engine->DumpMetrics(telemetry::DumpFormat::kJson);
  EXPECT_NE(json.find("\"query.slow\""), std::string::npos);
  engine->Stop();
}

TEST(EngineTelemetryTest, DumpMetricsRoundTripsBothFormats) {
  core::SvrEngineOptions opt;
  opt.telemetry.enabled = true;
  auto engine_r = workload::SetupChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();
  ASSERT_TRUE(engine->Search("t1", 10).ok());

  const std::string json = engine->DumpMetrics(telemetry::DumpFormat::kJson);
  for (const char* key :
       {"\"histograms\"", "\"query.total_us\"", "\"dml.apply_us\"",
        "\"dml.publish_us\"", "\"epoch.reclaim_pending\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string prom =
      engine->DumpMetrics(telemetry::DumpFormat::kPrometheus);
  for (const char* key :
       {"# TYPE svr_query_total_us summary", "svr_query_total_us_count",
        "# TYPE svr_epoch_reclaim_pending gauge"}) {
    EXPECT_NE(prom.find(key), std::string::npos) << key;
  }
  engine->Stop();
}

TEST(EngineTelemetryTest, DisabledTelemetryHasNoSurface) {
  core::SvrEngineOptions opt;  // telemetry off by default
  auto engine_r = workload::SetupChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();
  EXPECT_EQ(engine->metrics_registry(), nullptr);
  EXPECT_EQ(engine->slow_query_log(), nullptr);
  EXPECT_TRUE(engine->DumpMetrics(telemetry::DumpFormat::kJson).empty());
  // A trace passed anyway is still filled (caller opted in explicitly).
  telemetry::QueryTrace trace;
  auto r = engine->Search("t1 t2", 10, true, &trace);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(trace.keywords, "t1 t2");
  EXPECT_EQ(trace.results, r.value().size());
  engine->Stop();
}

TEST(ShardedTelemetryTest, TraceCarriesOneSpanPerShard) {
  core::ShardedSvrEngineOptions opt;
  opt.num_shards = 3;
  opt.shard.telemetry.enabled = true;
  opt.shard.telemetry.slow_query_threshold_us = 0;
  auto engine_r = workload::SetupShardedChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();

  auto plain = engine->Search("t1 t2", 10);
  telemetry::QueryTrace trace;
  auto traced = engine->Search("t1 t2", 10, true, &trace);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(plain.value().size(), traced.value().size());
  for (size_t i = 0; i < plain.value().size(); ++i) {
    EXPECT_EQ(plain.value()[i].pk, traced.value()[i].pk);
  }
  ASSERT_EQ(trace.shards.size(), 3u);
  uint64_t span_hits = 0;
  for (size_t s = 0; s < trace.shards.size(); ++s) {
    EXPECT_EQ(trace.shards[s].shard, s);
    span_hits += trace.shards[s].hits;
  }
  EXPECT_GE(span_hits, trace.results)
      << "shards offer at least what the gather kept";

  // The end-to-end query crossed the zero threshold.
  ASSERT_NE(engine->slow_query_log(), nullptr);
  EXPECT_GE(engine->slow_query_log()->total_recorded(), 1u);
  // One registry serves shards and the sharded layer.
  const std::string json = engine->DumpMetrics(telemetry::DumpFormat::kJson);
  EXPECT_NE(json.find("\"sharded.query_total_us\""), std::string::npos);
  EXPECT_NE(json.find("\"sharded.scatter_shard_us\""), std::string::npos);
  EXPECT_NE(json.find("\"query.total_us\""), std::string::npos)
      << "per-shard instruments share the registry";
  engine->Stop();
}

TEST(ShardedTelemetryTest, StatsTotalsSumEveryField) {
  core::ShardedSvrEngineOptions opt;
  opt.num_shards = 3;
  auto engine_r = workload::SetupShardedChurnEngine(opt, SmallConfig());
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();
  for (const std::string q : {"t1 t2", "t0", "t3 t4"}) {
    ASSERT_TRUE(engine->Search(q, 10).ok());
  }
  const core::ShardedEngineStats stats = engine->GetStats();
  ASSERT_EQ(stats.shards.size(), 3u);
  // Field-wise: the total of every u64 counter — including the cursor
  // counters the old hand-written sum dropped — equals the shard sum.
  index::IndexStats want;
  for (const core::EngineStats& s : stats.shards) {
#define SVR_INDEX_STATS_SUM(name) want.name += s.index.name;
    SVR_INDEX_STATS_FIELDS(SVR_INDEX_STATS_SUM)
#undef SVR_INDEX_STATS_SUM
  }
#define SVR_INDEX_STATS_CHECK(name) \
  EXPECT_EQ(stats.total.index.name, want.name) << #name;
  SVR_INDEX_STATS_FIELDS(SVR_INDEX_STATS_CHECK)
#undef SVR_INDEX_STATS_CHECK
  EXPECT_GT(stats.total.index.queries, 0u);
  engine->Stop();
}

}  // namespace
}  // namespace svr
