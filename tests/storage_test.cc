#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/key_codec.h"
#include "common/random.h"
#include "storage/blob_store.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace svr::storage {
namespace {

TEST(PageStoreTest, AllocateReadWrite) {
  InMemoryPageStore store(512);
  auto id1 = store.Allocate();
  ASSERT_TRUE(id1.ok());
  auto id2 = store.Allocate();
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());

  std::string buf(512, 'x');
  ASSERT_TRUE(store.Write(id1.value(), buf.data()).ok());
  std::string out(512, '\0');
  ASSERT_TRUE(store.Read(id1.value(), out.data()).ok());
  EXPECT_EQ(out, buf);
}

TEST(PageStoreTest, FreshPageIsZeroed) {
  InMemoryPageStore store(256);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::string out(256, 'x');
  ASSERT_TRUE(store.Read(id.value(), out.data()).ok());
  EXPECT_EQ(out, std::string(256, '\0'));
}

TEST(PageStoreTest, FreeAndRecycle) {
  InMemoryPageStore store(256);
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.live_pages(), 1u);
  ASSERT_TRUE(store.Free(id.value()).ok());
  EXPECT_EQ(store.live_pages(), 0u);
  // Freed page is rejected until reallocated.
  std::string buf(256, '\0');
  EXPECT_FALSE(store.Read(id.value(), buf.data()).ok());
  auto id2 = store.Allocate();
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id2.value(), id.value());  // recycled
  // Recycled page must come back zeroed.
  ASSERT_TRUE(store.Read(id2.value(), buf.data()).ok());
  EXPECT_EQ(buf, std::string(256, '\0'));
}

TEST(PageStoreTest, AllocateRunIsContiguous) {
  InMemoryPageStore store(256);
  auto first = store.AllocateRun(5);
  ASSERT_TRUE(first.ok());
  std::string buf(256, 'a');
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(store.Write(first.value() + i, buf.data()).ok());
  }
  EXPECT_EQ(store.live_pages(), 5u);
}

TEST(PageStoreTest, InvalidAccessRejected) {
  InMemoryPageStore store(256);
  std::string buf(256, '\0');
  EXPECT_TRUE(store.Read(99, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(store.Write(99, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(store.Free(99).IsInvalidArgument());
  EXPECT_FALSE(store.AllocateRun(0).ok());
}

TEST(FilePageStoreTest, RoundTripThroughRealFile) {
  auto store_r = FilePageStore::Create("/tmp/svr_test_pages.bin", 512);
  ASSERT_TRUE(store_r.ok());
  auto& store = *store_r.value();
  auto id = store.Allocate();
  ASSERT_TRUE(id.ok());
  std::string buf(512, 'q');
  ASSERT_TRUE(store.Write(id.value(), buf.data()).ok());
  std::string out(512, '\0');
  ASSERT_TRUE(store.Read(id.value(), out.data()).ok());
  EXPECT_EQ(out, buf);
  auto run = store.AllocateRun(3);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(store.Read(run.value() + 2, out.data()).ok());
  EXPECT_EQ(out, std::string(512, '\0'));
}

// --- buffer pool -------------------------------------------------------

TEST(BufferPoolTest, HitAndMissAccounting) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 4);
  PageHandle h;
  ASSERT_TRUE(pool.NewPage(&h).ok());
  PageId id = h.id();
  h.mutable_data()[0] = 'z';
  h.Release();

  PageHandle h2;
  ASSERT_TRUE(pool.Fetch(id, &h2).ok());
  EXPECT_EQ(h2.data()[0], 'z');
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    PageHandle h;
    ASSERT_TRUE(pool.NewPage(&h).ok());
    h.mutable_data()[0] = static_cast<char>('a' + i);
    ids.push_back(h.id());
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  // All data must survive eviction.
  for (int i = 0; i < 6; ++i) {
    PageHandle h;
    ASSERT_TRUE(pool.Fetch(ids[i], &h).ok());
    EXPECT_EQ(h.data()[0], static_cast<char>('a' + i));
  }
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 2);
  PageHandle pinned;
  ASSERT_TRUE(pool.NewPage(&pinned).ok());
  pinned.mutable_data()[0] = 'p';
  // Flood the pool: the pinned page must not be evicted.
  for (int i = 0; i < 10; ++i) {
    PageHandle h;
    ASSERT_TRUE(pool.NewPage(&h).ok());
  }
  EXPECT_EQ(pinned.data()[0], 'p');
}

TEST(BufferPoolTest, EvictAllImplementsColdCache) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 100);
  PageHandle h;
  ASSERT_TRUE(pool.NewPage(&h).ok());
  PageId id = h.id();
  h.Release();

  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.cached_pages(), 0u);
  pool.ResetStats();
  PageHandle h2;
  ASSERT_TRUE(pool.Fetch(id, &h2).ok());
  EXPECT_EQ(pool.stats().misses, 1u);  // genuinely re-read from "disk"
}

TEST(BufferPoolTest, FreePageDropsWithoutWriteback) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 4);
  PageHandle h;
  ASSERT_TRUE(pool.NewPage(&h).ok());
  PageId id = h.id();
  h.Release();
  ASSERT_TRUE(pool.FreePage(id).ok());
  EXPECT_EQ(store.live_pages(), 0u);
  PageHandle h2;
  EXPECT_FALSE(pool.Fetch(id, &h2).ok());
}

TEST(BufferPoolTest, MoveHandleTransfersPin) {
  InMemoryPageStore store(256);
  BufferPool pool(&store, 4);
  PageHandle a;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  PageId id = a.id();
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
}

// --- B+-tree -----------------------------------------------------------

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<InMemoryPageStore>(page_size_);
    pool_ = std::make_unique<BufferPool>(store_.get(), 10000);
    auto t = BPlusTree::Create(pool_.get());
    ASSERT_TRUE(t.ok());
    tree_ = std::move(t).value();
  }

  std::string Key(int i) {
    std::string k;
    PutKeyU32(&k, static_cast<uint32_t>(i));
    return k;
  }

  uint32_t page_size_ = 512;  // small pages force deep trees
  std::unique_ptr<InMemoryPageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, EmptyTreeBehaviour) {
  std::string v;
  EXPECT_TRUE(tree_->Get(Key(1), &v).IsNotFound());
  EXPECT_TRUE(tree_->Delete(Key(1)).IsNotFound());
  EXPECT_EQ(tree_->size(), 0u);
  auto it = tree_->Begin();
  EXPECT_FALSE(it->Valid());
}

TEST_F(BPlusTreeTest, PutGetSingle) {
  ASSERT_TRUE(tree_->Put(Key(5), "five").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Key(5), &v).ok());
  EXPECT_EQ(v, "five");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BPlusTreeTest, PutOverwrites) {
  ASSERT_TRUE(tree_->Put(Key(5), "old").ok());
  ASSERT_TRUE(tree_->Put(Key(5), "new").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Key(5), &v).ok());
  EXPECT_EQ(v, "new");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BPlusTreeTest, ManyInsertsAscending) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(tree_->size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Key(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
}

TEST_F(BPlusTreeTest, ManyInsertsDescending) {
  for (int i = 1999; i >= 0; --i) {
    ASSERT_TRUE(tree_->Put(Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  for (int i = 0; i < 2000; ++i) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Key(i), &v).ok()) << i;
  }
}

TEST_F(BPlusTreeTest, IterationIsSortedAndComplete) {
  Random rng(11);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 1500; ++i) {
    int k = static_cast<int>(rng.Uniform(100000));
    model[Key(k)] = "v" + std::to_string(k);
    ASSERT_TRUE(tree_->Put(Key(k), model[Key(k)]).ok());
  }
  auto it = tree_->Begin();
  auto mit = model.begin();
  while (mit != model.end()) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), mit->first);
    EXPECT_EQ(it->value().ToString(), mit->second);
    it->Next();
    ++mit;
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(BPlusTreeTest, SeekFindsLowerBound) {
  for (int i = 0; i < 100; i += 10) {
    ASSERT_TRUE(tree_->Put(Key(i), std::to_string(i)).ok());
  }
  auto it = tree_->Seek(Key(35));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "40");
  it = tree_->Seek(Key(40));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "40");
  it = tree_->Seek(Key(91));
  EXPECT_FALSE(it->Valid());
  it = tree_->Seek(Key(0));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "0");
}

TEST_F(BPlusTreeTest, DeleteThenMissing) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), "x").ok());
  }
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(tree_->Delete(Key(i)).ok()) << i;
  }
  EXPECT_EQ(tree_->size(), 250u);
  std::string v;
  for (int i = 0; i < 500; ++i) {
    Status st = tree_->Get(Key(i), &v);
    if (i % 2 == 0) {
      EXPECT_TRUE(st.IsNotFound()) << i;
    } else {
      EXPECT_TRUE(st.ok()) << i;
    }
  }
}

TEST_F(BPlusTreeTest, DeleteEverythingFreesPages) {
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), "payload-" + std::to_string(i)).ok());
  }
  uint64_t peak_pages = tree_->num_pages();
  EXPECT_GT(peak_pages, 10u);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Delete(Key(i)).ok()) << i;
  }
  EXPECT_EQ(tree_->size(), 0u);
  // Tree collapses to (at most a handful of) pages.
  EXPECT_LE(tree_->num_pages(), 3u);
  auto it = tree_->Begin();
  EXPECT_FALSE(it->Valid());
  // And is still usable.
  ASSERT_TRUE(tree_->Put(Key(7), "back").ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Key(7), &v).ok());
  EXPECT_EQ(v, "back");
}

TEST_F(BPlusTreeTest, VariableLengthKeysAndValues) {
  Random rng(5);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 800; ++i) {
    std::string k(1 + rng.Uniform(40), 'a');
    for (auto& c : k) c = static_cast<char>('a' + rng.Uniform(26));
    std::string val(rng.Uniform(80), 'v');
    model[k] = val;
    ASSERT_TRUE(tree_->Put(k, val).ok());
  }
  for (const auto& [k, val] : model) {
    std::string v;
    ASSERT_TRUE(tree_->Get(k, &v).ok());
    EXPECT_EQ(v, val);
  }
  EXPECT_EQ(tree_->size(), model.size());
}

TEST_F(BPlusTreeTest, RejectsOversizedCell) {
  std::string huge(page_size_, 'x');
  EXPECT_TRUE(tree_->Put("k", huge).IsInvalidArgument());
}

// Differential test: random interleaved Put/Delete/Get/scan vs std::map.
TEST_F(BPlusTreeTest, RandomizedDifferentialAgainstStdMap) {
  Random rng(2005);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 20000; ++op) {
    int key_int = static_cast<int>(rng.Uniform(3000));
    std::string k = Key(key_int);
    uint64_t action = rng.Uniform(10);
    if (action < 5) {
      std::string val = "val" + std::to_string(rng.Uniform(1000));
      ASSERT_TRUE(tree_->Put(k, val).ok());
      model[k] = val;
    } else if (action < 8) {
      Status st = tree_->Delete(k);
      if (model.erase(k) > 0) {
        EXPECT_TRUE(st.ok()) << op;
      } else {
        EXPECT_TRUE(st.IsNotFound()) << op;
      }
    } else {
      std::string v;
      Status st = tree_->Get(k, &v);
      auto mit = model.find(k);
      if (mit == model.end()) {
        EXPECT_TRUE(st.IsNotFound()) << op;
      } else {
        ASSERT_TRUE(st.ok()) << op;
        EXPECT_EQ(v, mit->second) << op;
      }
    }
    EXPECT_EQ(tree_->size(), model.size());
  }
  // Final full-scan equivalence.
  auto it = tree_->Begin();
  for (const auto& [k, val] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), k);
    EXPECT_EQ(it->value().ToString(), val);
    it->Next();
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(BPlusTreeTest, EmptyingASplitLeafKeepsTheChainIntact) {
  // Regression: the leaf split used to rebuild the left page with
  // InitLeaf() and only restore `next`, wiping `prev`. Emptying such a
  // leaf later skipped the predecessor fix-up on unlink, leaving the
  // predecessor's next pointing at a freed page — range scans then
  // walked into unallocated storage. Ascending inserts split the tail
  // leaf (which has a predecessor) repeatedly, so deleting any middle
  // run reproduces it.
  const int n = 200;  // several leaves at 512-byte pages
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_->Put(Key(i), "value-" + std::to_string(i)).ok());
  }
  // Delete a contiguous middle run long enough to empty whole leaves.
  for (int i = 60; i < 140; ++i) {
    ASSERT_TRUE(tree_->Delete(Key(i)).ok());
  }
  int count = 0;
  auto it = tree_->Begin();
  for (; it->Valid(); it->Next()) ++count;
  EXPECT_TRUE(it->status().ok()) << it->status().ToString();
  EXPECT_EQ(count, n - 80);
  for (int i = 0; i < n; ++i) {
    std::string v;
    Status st = tree_->Get(Key(i), &v);
    if (i >= 60 && i < 140) {
      EXPECT_TRUE(st.IsNotFound()) << i;
    } else {
      ASSERT_TRUE(st.ok()) << i << ": " << st.ToString();
    }
  }
}

TEST_F(BPlusTreeTest, WorksUnderTinyBufferPool) {
  // Pool far smaller than the tree: exercises eviction + writeback under
  // structural changes.
  BufferPool small_pool(store_.get(), 3);
  auto t = BPlusTree::Create(&small_pool);
  ASSERT_TRUE(t.ok());
  auto& tree = *t.value();
  std::map<std::string, std::string> model;
  Random rng(77);
  for (int i = 0; i < 4000; ++i) {
    std::string k = Key(static_cast<int>(rng.Uniform(100000)));
    tree.Put(k, "v" + k);
    model[k] = "v" + k;
  }
  for (const auto& [k, val] : model) {
    std::string v;
    ASSERT_TRUE(tree.Get(k, &v).ok());
    EXPECT_EQ(v, val);
  }
  EXPECT_GT(small_pool.stats().evictions, 0u);
}

// --- blob store ---------------------------------------------------------

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<InMemoryPageStore>(256);
    pool_ = std::make_unique<BufferPool>(store_.get(), 64);
    blobs_ = std::make_unique<BlobStore>(pool_.get());
  }

  std::unique_ptr<InMemoryPageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> blobs_;
};

TEST_F(BlobStoreTest, WriteReadRoundTrip) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += static_cast<char>(i % 251);
  auto ref = blobs_->Write(data);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().size_bytes, data.size());
  EXPECT_EQ(ref.value().num_pages, 4u);  // 1000 bytes over 256-byte pages

  auto reader = blobs_->NewReader(ref.value());
  std::string out(data.size(), '\0');
  ASSERT_TRUE(reader.ReadBytes(out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(reader.AtEnd());
}

TEST_F(BlobStoreTest, ReadPastEndRejected) {
  auto ref = blobs_->Write(std::string("abc"));
  ASSERT_TRUE(ref.ok());
  auto reader = blobs_->NewReader(ref.value());
  char buf[4];
  EXPECT_TRUE(reader.ReadBytes(buf, 4).IsOutOfRange());
  ASSERT_TRUE(reader.ReadBytes(buf, 3).ok());
  EXPECT_TRUE(reader.ReadBytes(buf, 1).IsOutOfRange());
}

TEST_F(BlobStoreTest, VarintsAcrossPageBoundary) {
  std::string data;
  // Fill so a multi-byte varint straddles the 256-byte page boundary.
  for (int i = 0; i < 255; ++i) data.push_back('x');
  PutVarint64(&data, 300);  // 2 bytes: byte 255 and 256
  PutVarint64(&data, 1234567);
  auto ref = blobs_->Write(data);
  ASSERT_TRUE(ref.ok());
  auto reader = blobs_->NewReader(ref.value());
  ASSERT_TRUE(reader.Skip(255).ok());
  uint64_t v;
  ASSERT_TRUE(reader.ReadVarint64(&v).ok());
  EXPECT_EQ(v, 300u);
  ASSERT_TRUE(reader.ReadVarint64(&v).ok());
  EXPECT_EQ(v, 1234567u);
}

TEST_F(BlobStoreTest, SkipAvoidsFetchingSkippedPages) {
  std::string data(256 * 10, 'd');
  auto ref = blobs_->Write(data);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(pool_->EvictAll().ok());
  pool_->ResetStats();

  auto reader = blobs_->NewReader(ref.value());
  ASSERT_TRUE(reader.Skip(256 * 9).ok());
  char c;
  ASSERT_TRUE(reader.ReadBytes(&c, 1).ok());
  EXPECT_EQ(c, 'd');
  EXPECT_EQ(pool_->stats().misses, 1u);  // only the final page was read
}

TEST_F(BlobStoreTest, FloatRoundTrip) {
  std::string data;
  float f = 0.125f;
  data.append(reinterpret_cast<const char*>(&f), 4);
  auto ref = blobs_->Write(data);
  ASSERT_TRUE(ref.ok());
  auto reader = blobs_->NewReader(ref.value());
  float out;
  ASSERT_TRUE(reader.ReadFloat(&out).ok());
  EXPECT_EQ(out, 0.125f);
}

TEST_F(BlobStoreTest, FreeReturnsPages) {
  auto ref = blobs_->Write(std::string(2000, 'z'));
  ASSERT_TRUE(ref.ok());
  uint64_t live_before = store_->live_pages();
  ASSERT_TRUE(blobs_->Free(ref.value()).ok());
  EXPECT_LT(store_->live_pages(), live_before);
  EXPECT_EQ(blobs_->total_pages(), 0u);
}

TEST_F(BlobStoreTest, EmptyBlobIsValid) {
  auto ref = blobs_->Write(Slice());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref.value().valid());
  EXPECT_EQ(ref.value().size_bytes, 0u);
  auto reader = blobs_->NewReader(ref.value());
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace svr::storage
