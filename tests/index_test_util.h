#ifndef SVR_TESTS_INDEX_TEST_UTIL_H_
#define SVR_TESTS_INDEX_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/oracle.h"
#include "index/index_factory.h"
#include "relational/score_table.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "text/corpus.h"
#include "text/corpus_generator.h"

namespace svr::test {

/// A self-contained world for index testing: storage, score table,
/// corpus, one index method, and the brute-force oracle.
struct IndexWorld {
  std::unique_ptr<storage::InMemoryPageStore> table_store;
  std::unique_ptr<storage::InMemoryPageStore> list_store;
  std::unique_ptr<storage::BufferPool> table_pool;
  std::unique_ptr<storage::BufferPool> list_pool;
  std::unique_ptr<relational::ScoreTable> score_table;
  text::Corpus corpus;
  std::unique_ptr<index::TextIndex> idx;
  std::unique_ptr<core::BruteForceOracle> oracle;

  /// A NaN in `scores` leaves that doc without a Score-table entry
  /// (never-scored; indexed at 0.0 like BuildLongLists does).
  static std::unique_ptr<IndexWorld> Make(
      index::Method method, const text::CorpusParams& corpus_params,
      const std::vector<double>& scores,
      index::IndexOptions options = DefaultOptions(),
      PostingFormat posting_format = PostingFormat::kV2,
      MergePolicy merge_policy = {}) {
    auto w = std::make_unique<IndexWorld>();
    w->table_store = std::make_unique<storage::InMemoryPageStore>(4096);
    w->list_store = std::make_unique<storage::InMemoryPageStore>(4096);
    w->table_pool =
        std::make_unique<storage::BufferPool>(w->table_store.get(), 4096);
    w->list_pool =
        std::make_unique<storage::BufferPool>(w->list_store.get(), 4096);
    auto st = relational::ScoreTable::Create(w->table_pool.get());
    if (!st.ok()) return nullptr;
    w->score_table = std::move(st).value();
    w->corpus = text::GenerateCorpus(corpus_params);
    for (DocId d = 0; d < w->corpus.num_docs(); ++d) {
      if (std::isnan(scores[d])) continue;
      if (!w->score_table->Set(d, scores[d]).ok()) return nullptr;
    }
    index::IndexContext ctx;
    ctx.table_pool = w->table_pool.get();
    ctx.list_pool = w->list_pool.get();
    ctx.score_table = w->score_table.get();
    ctx.corpus = &w->corpus;
    ctx.posting_format = posting_format;
    ctx.merge_policy = merge_policy;
    auto idx = index::CreateIndex(method, ctx, options);
    if (!idx.ok()) return nullptr;
    w->idx = std::move(idx).value();
    if (!w->idx->Build().ok()) return nullptr;
    w->oracle = std::make_unique<core::BruteForceOracle>(
        &w->corpus, w->score_table.get(), options.term_scores);
    return w;
  }

  static index::IndexOptions DefaultOptions() {
    index::IndexOptions o;
    // Small-scale settings so tiny test corpora still get many chunks.
    o.chunk.chunking.chunk_ratio = 2.0;
    o.chunk.chunking.min_chunk_size = 5;
    o.score_threshold.threshold_ratio = 2.0;
    o.term_scores.fancy_list_size = 8;
    o.chunk.term_scores.fancy_list_size = 8;
    return o;
  }
};

/// Zipf-like initial scores in [0, max], mirroring Figure 6.
inline std::vector<double> MakeScores(size_t n, double max_score,
                                      double theta, uint64_t seed) {
  std::vector<size_t> ranks(n);
  for (size_t i = 0; i < n; ++i) ranks[i] = i;
  Random rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng.Uniform(i)]);
  }
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] =
        max_score / std::pow(static_cast<double>(ranks[i] + 1), theta);
  }
  return scores;
}

inline bool IsTermScoreMethod(index::Method m) {
  return m == index::Method::kIdTermScore ||
         m == index::Method::kChunkTermScore;
}

}  // namespace svr::test

#endif  // SVR_TESTS_INDEX_TEST_UTIL_H_
