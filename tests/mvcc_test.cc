// MVCC read-path tests (docs/concurrency.md):
//  - VersionedArray unit semantics: snapshots are immutable and share
//    untouched chunks with the working version.
//  - Copy-on-write B+-tree: sealed snapshots read the exact contents at
//    their seal point while the writer keeps mutating; retired pages of
//    dead versions are handed to the retirer, never freed in place.
//  - Engine-level pinned ReadViews: a pinned view answers identically
//    before and after concurrent writer churn, and equals the
//    brute-force oracle evaluated at the same view, across all 5
//    methods — including while real writer threads race (a TSan target
//    in ci.sh).
//  - Cross-shard pinned views: one ShardedReadView is a true snapshot —
//    the gather at a pinned watermark never moves, even under writes,
//    including ties at a shard's k-boundary.
//  - The fully-merged sweep retires stale in_short list-state entries
//    once every term of a moved document has been merged.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/versioned_array.h"
#include "core/oracle.h"
#include "core/sharded_engine.h"
#include "core/svr_engine.h"
#include "index/chunk_base.h"
#include "index/score_threshold_index.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "workload/concurrent_driver.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SVR_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SVR_TSAN_BUILD 1
#endif
#ifndef SVR_TSAN_BUILD
#define SVR_TSAN_BUILD 0
#endif

namespace svr {
namespace {

constexpr bool kTsanBuild = SVR_TSAN_BUILD != 0;

using relational::Value;

// --- VersionedArray ----------------------------------------------------

TEST(VersionedArrayTest, SnapshotsAreImmutable) {
  VersionedArray<int, 4> arr;
  for (int i = 0; i < 10; ++i) arr.Set(i, i * 10);
  auto s1 = arr.Seal();
  ASSERT_EQ(s1.size(), 10u);
  arr.Set(3, -1);
  arr.Set(12, 120);  // grows past the sealed size
  auto s2 = arr.Seal();

  EXPECT_EQ(s1.Get(3), 30);
  EXPECT_EQ(s1.Get(12), 0) << "growth must not leak into old snapshots";
  EXPECT_EQ(s1.size(), 10u);
  EXPECT_EQ(s2.Get(3), -1);
  EXPECT_EQ(s2.Get(12), 120);
  EXPECT_EQ(arr.Get(3), -1);
}

TEST(VersionedArrayTest, UnsetSlotsReadDefault) {
  VersionedArray<uint64_t, 8> arr;
  arr.Set(20, 7);
  auto s = arr.Seal();
  EXPECT_EQ(s.Get(0), 0u);   // chunk never allocated below
  EXPECT_EQ(s.Get(19), 0u);  // same chunk as 20, value-initialized
  EXPECT_EQ(s.Get(20), 7u);
  EXPECT_EQ(s.Get(500), 0u);  // out of range
  EXPECT_EQ(s.Find(500), nullptr);
}

TEST(VersionedArrayTest, ManySnapshotsShareStructure) {
  VersionedArray<int, 16> arr;
  std::vector<VersionedArray<int, 16>::Snapshot> snaps;
  std::vector<std::map<size_t, int>> refs;
  std::map<size_t, int> ref;
  Random rng(7);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 20; ++i) {
      const size_t idx = rng.Uniform(300);
      const int v = static_cast<int>(rng.Uniform(1000));
      arr.Set(idx, v);
      ref[idx] = v;
    }
    snaps.push_back(arr.Seal());
    refs.push_back(ref);
  }
  for (size_t s = 0; s < snaps.size(); ++s) {
    for (const auto& [idx, v] : refs[s]) {
      EXPECT_EQ(snaps[s].Get(idx), v) << "snapshot " << s << " idx " << idx;
    }
  }
}

// --- copy-on-write B+-tree --------------------------------------------

struct CowTreeWorld {
  std::unique_ptr<storage::InMemoryPageStore> store;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<storage::BPlusTree> tree;
  std::vector<storage::PageId> retired;

  explicit CowTreeWorld(uint32_t page_size = 512) {
    store = std::make_unique<storage::InMemoryPageStore>(page_size);
    pool = std::make_unique<storage::BufferPool>(store.get(), 1 << 14);
    auto t = storage::BPlusTree::CreateCow(
        pool.get(), [this](storage::PageId id) { retired.push_back(id); });
    tree = std::move(t).value();
  }
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

TEST(CowBPlusTreeTest, SealedSnapshotSurvivesMutation) {
  CowTreeWorld w;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(w.tree->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  const storage::TreeSnapshot snap = w.tree->Seal();

  // Mutate heavily: overwrite, delete, insert.
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(w.tree->Put(Key(i), "NEW" + std::to_string(i)).ok());
  }
  for (int i = 1; i < 500; i += 4) {
    ASSERT_TRUE(w.tree->Delete(Key(i)).ok());
  }
  for (int i = 500; i < 700; ++i) {
    ASSERT_TRUE(w.tree->Put(Key(i), "late").ok());
  }

  // The sealed version still reads exactly its contents...
  EXPECT_EQ(snap.size, 500u);
  std::string v;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(w.tree->GetAt(snap, Key(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  EXPECT_TRUE(w.tree->GetAt(snap, Key(600), &v).IsNotFound());
  // ...and in order.
  int count = 0;
  for (auto it = w.tree->BeginAt(snap); it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 500);

  // The live tree reads the new state.
  ASSERT_TRUE(w.tree->Get(Key(0), &v).ok());
  EXPECT_EQ(v, "NEW0");
  EXPECT_TRUE(w.tree->Get(Key(1), &v).IsNotFound());
  // Mutating a sealed version shadowed pages into the retirer.
  EXPECT_GT(w.retired.size(), 0u);
}

TEST(CowBPlusTreeTest, RandomizedSnapshotsMatchReferenceMaps) {
  CowTreeWorld w;
  std::map<std::string, std::string> ref;
  std::vector<storage::TreeSnapshot> snaps;
  std::vector<std::map<std::string, std::string>> refs;
  Random rng(2005);
  for (int round = 0; round < 20; ++round) {
    for (int op = 0; op < 200; ++op) {
      const int k = static_cast<int>(rng.Uniform(800));
      if (rng.OneIn(4)) {
        Status st = w.tree->Delete(Key(k));
        if (ref.count(Key(k)) > 0) {
          EXPECT_TRUE(st.ok());
          ref.erase(Key(k));
        } else {
          EXPECT_TRUE(st.IsNotFound());
        }
      } else {
        const std::string v = "r" + std::to_string(rng.Uniform(10000));
        ASSERT_TRUE(w.tree->Put(Key(k), v).ok());
        ref[Key(k)] = v;
      }
    }
    snaps.push_back(w.tree->Seal());
    refs.push_back(ref);
  }
  // Every sealed version must match its reference map exactly — both by
  // point lookups and by full ordered iteration.
  for (size_t s = 0; s < snaps.size(); ++s) {
    EXPECT_EQ(snaps[s].size, refs[s].size());
    auto it = w.tree->BeginAt(snaps[s]);
    auto rit = refs[s].begin();
    while (it->Valid() && rit != refs[s].end()) {
      EXPECT_EQ(it->key().ToString(), rit->first);
      EXPECT_EQ(it->value().ToString(), rit->second);
      it->Next();
      ++rit;
    }
    EXPECT_FALSE(it->Valid());
    EXPECT_EQ(rit, refs[s].end());
    ASSERT_TRUE(it->status().ok());
  }
}

TEST(CowBPlusTreeTest, RetiredPagesAreSafeToFreeOnceSnapshotsDie) {
  CowTreeWorld w;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(w.tree->Put(Key(i), std::string(40, 'x')).ok());
  }
  // Churn across many sealed generations, freeing each generation's
  // retired pages once its (only) snapshot is dropped — the working tree
  // must stay fully intact, proving shadowing never reuses dead pages.
  for (int gen = 0; gen < 10; ++gen) {
    w.tree->Seal();
    for (int i = 0; i < 300; i += 3) {
      ASSERT_TRUE(w.tree->Put(Key(i), "g" + std::to_string(gen)).ok());
    }
    for (storage::PageId id : w.retired) {
      ASSERT_TRUE(w.pool->FreePage(id).ok());
    }
    w.retired.clear();
  }
  std::string v;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(w.tree->Get(Key(i), &v).ok()) << i;
  }
  // Live page count stays bounded by the tree's size, not by the churn.
  EXPECT_LT(w.tree->num_pages(), 200u);
}

// --- engine-level pinned ReadViews ------------------------------------

class PinnedViewTest : public ::testing::TestWithParam<index::Method> {};

TEST_P(PinnedViewTest, PinnedViewIsImmutableUnderWriterChurn) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 400;
  cfg.vocab = 200;
  cfg.terms_per_doc = 12;
  core::SvrEngineOptions opt;
  opt.method = GetParam();
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.merge_policy.enabled = true;
  opt.merge_policy.min_short_postings = 8;
  opt.merge_policy.check_interval = 32;
  auto engine_r = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();
  const bool with_ts =
      engine->text_index()->name().find("TermScore") != std::string::npos;

  // Pin a view and record the answer plus the oracle at that view.
  core::SvrEngine::ReadView view = engine->PinReadView();
  ASSERT_TRUE(view.indexed());
  index::Query q;
  q.conjunctive = true;
  q.terms.push_back(engine->vocabulary()->Lookup("t1"));
  q.terms.push_back(engine->vocabulary()->Lookup("t2"));
  ASSERT_NE(q.terms[0], text::Vocabulary::kUnknownTerm);

  std::vector<index::SearchResult> before, oracle_at_view;
  ASSERT_TRUE(
      engine->text_index()->TopKAt(view.state->index, q, 20, &before).ok());
  ASSERT_TRUE(core::BruteForceOracle::TopKAt(
                  view.state->index.corpus,
                  relational::ScoreTable::View(engine->score_table(),
                                               view.state->index.score),
                  q, 20, with_ts, &oracle_at_view)
                  .ok());
  EXPECT_EQ(before, oracle_at_view)
      << "pinned query must match the oracle at the same view";

  // Writer churn: score moves, inserts, deletes, content updates —
  // enough to trigger merges and shadow many pages.
  Random rng(99);
  for (int i = 0; i < 300; ++i) {
    const int64_t id = static_cast<int64_t>(rng.Uniform(cfg.initial_docs));
    switch (rng.Uniform(4)) {
      case 0:
        ASSERT_TRUE(engine
                        ->Update("scores",
                                 {Value::Int(id),
                                  Value::Double(90000.0 + i)})
                        .ok());
        break;
      case 1:
        // Same carve-out as the driver: content updates leave the
        // *-TermScore methods' build-time term scores stale by design,
        // so oracle-checked runs redirect them into score churn.
        if (with_ts) {
          ASSERT_TRUE(engine
                          ->Update("scores", {Value::Int(id),
                                              Value::Double(70000.0 + i)})
                          .ok());
        } else {
          ASSERT_TRUE(
              engine
                  ->Update("docs", {Value::Int(id),
                                    Value::String("t1 t2 t3 fresh" +
                                                  std::to_string(i))})
                  .ok());
        }
        break;
      default:
        ASSERT_TRUE(engine
                        ->Update("scores",
                                 {Value::Int(id), Value::Double(5.0 + i)})
                        .ok());
        break;
    }
  }

  // The pinned view answers byte-for-byte identically.
  std::vector<index::SearchResult> after;
  ASSERT_TRUE(
      engine->text_index()->TopKAt(view.state->index, q, 20, &after).ok());
  EXPECT_EQ(before, after)
      << "a pinned view must be immutable under writer churn";

  // A fresh view reflects the churn and matches the oracle at *its*
  // version.
  core::SvrEngine::ReadView fresh = engine->PinReadView();
  EXPECT_GT(fresh.commit_ts(), view.commit_ts());
  std::vector<index::SearchResult> now, oracle_now;
  ASSERT_TRUE(
      engine->text_index()->TopKAt(fresh.state->index, q, 20, &now).ok());
  ASSERT_TRUE(core::BruteForceOracle::TopKAt(
                  fresh.state->index.corpus,
                  relational::ScoreTable::View(engine->score_table(),
                                               fresh.state->index.score),
                  q, 20, with_ts, &oracle_now)
                  .ok());
  EXPECT_EQ(now, oracle_now);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PinnedViewTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kIdTermScore,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

// The TSan-facing variant: real writer threads race a reader that holds
// one pinned view across many queries; every repetition must return the
// identical result and match the oracle at the pinned version.
class PinnedViewRaceTest : public ::testing::TestWithParam<index::Method> {
};

TEST_P(PinnedViewRaceTest, HeldViewStaysConsistentWhileWritersRace) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = kTsanBuild ? 200 : 500;
  cfg.vocab = 150;
  cfg.terms_per_doc = 10;
  core::SvrEngineOptions opt;
  opt.method = GetParam();
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  opt.merge_policy.enabled = true;
  opt.merge_policy.min_short_postings = 8;
  opt.merge_policy.check_interval = 32;
  opt.background_merge = true;
  auto engine_r = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();
  const bool with_ts =
      engine->text_index()->name().find("TermScore") != std::string::npos;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Random rng(1234);
    const int ops = kTsanBuild ? 300 : 1500;
    for (int i = 0; i < ops; ++i) {
      const int64_t id =
          static_cast<int64_t>(rng.Uniform(cfg.initial_docs));
      Status st = engine->Update(
          "scores",
          {Value::Int(id), Value::Double(1.0 + rng.Uniform(100000))});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    done.store(true, std::memory_order_release);
  });

  index::Query q;
  q.conjunctive = true;
  q.terms.push_back(engine->vocabulary()->Lookup("t0"));
  q.terms.push_back(engine->vocabulary()->Lookup("t3"));
  Status reader_status;
  int rounds = 0;
  while (!done.load(std::memory_order_acquire)) {
    core::SvrEngine::ReadView view = engine->PinReadView();
    std::vector<index::SearchResult> first;
    Status st =
        engine->text_index()->TopKAt(view.state->index, q, 15, &first);
    if (!st.ok()) {
      reader_status = st;
      break;
    }
    // Re-query the held view several times while the writer churns; it
    // must never move. Then check it against the oracle at the view.
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<index::SearchResult> again;
      st = engine->text_index()->TopKAt(view.state->index, q, 15, &again);
      if (!st.ok() || again != first) {
        reader_status = st.ok() ? Status::Internal("pinned view moved")
                                : st;
        break;
      }
    }
    if (!reader_status.ok()) break;
    std::vector<index::SearchResult> want;
    st = core::BruteForceOracle::TopKAt(
        view.state->index.corpus,
        relational::ScoreTable::View(engine->score_table(),
                                     view.state->index.score),
        q, 15, with_ts, &want);
    if (!st.ok() || first != want) {
      reader_status =
          st.ok() ? Status::Internal("pinned view diverged from oracle")
                  : st;
      break;
    }
    ++rounds;
  }
  writer.join();
  EXPECT_TRUE(reader_status.ok()) << reader_status.ToString();
  EXPECT_GT(rounds, 0);
  engine->Stop();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PinnedViewRaceTest,
                         ::testing::Values(index::Method::kId,
                                           index::Method::kIdTermScore,
                                           index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

// --- cross-shard pinned views -----------------------------------------

TEST(ShardedPinnedViewTest, GatherAtPinnedWatermarkNeverMoves) {
  core::ShardedSvrEngineOptions opt;
  opt.num_shards = 2;
  opt.shard.method = index::Method::kChunk;
  opt.shard.index_options.chunk.chunking.min_chunk_size = 1;
  auto engine_r = core::ShardedSvrEngine::Open(opt);
  ASSERT_TRUE(engine_r.ok());
  auto engine = std::move(engine_r).value();

  ASSERT_TRUE(engine
                  ->CreateTable("docs", relational::Schema(
                                            {{"id", relational::ValueType::
                                                        kInt64},
                                             {"text", relational::ValueType::
                                                          kString}},
                                            0))
                  .ok());
  ASSERT_TRUE(
      engine
          ->CreateTable("scores",
                        relational::Schema(
                            {{"id", relational::ValueType::kInt64},
                             {"val", relational::ValueType::kDouble}},
                            0))
          .ok());
  // 30 docs, all holding token "tie"; a band of equal scores spans both
  // shards so the global k-boundary cuts through a cross-shard tie.
  for (int64_t id = 0; id < 30; ++id) {
    ASSERT_TRUE(engine
                    ->Insert("docs", {Value::Int(id),
                                      Value::String("tie other" +
                                                    std::to_string(id))})
                    .ok());
    const double score = id < 10 ? 1000.0 - id : 500.0;  // 20-way tie
    ASSERT_TRUE(engine
                    ->Insert("scores",
                             {Value::Int(id), Value::Double(score)})
                    .ok());
  }
  ASSERT_TRUE(engine
                  ->CreateTextIndex(
                      "docs", "text",
                      {{"S1", "scores", "id", "val",
                        relational::AggregateKind::kValue}},
                      relational::AggFunction::WeightedSum({1.0}))
                  .ok());

  // k = 15 cuts inside the 20-way tie at score 500.
  core::ShardedReadView view = engine->PinReadViewAll();
  ASSERT_EQ(view.shards.size(), 2u);
  EXPECT_GT(view.watermark, 0u);
  auto before_r = engine->SearchAt(view, "tie", 15);
  ASSERT_TRUE(before_r.ok()) << before_r.status().ToString();
  const std::vector<core::ScoredRow> before = std::move(before_r).value();
  ASSERT_EQ(before.size(), 15u);
  // Tie break is (score desc, global id asc): ids 0..9 then 10..14.
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].pk, static_cast<int64_t>(i)) << "rank " << i;
  }

  // Concurrent-style churn *after* the pin: score moves on both shards.
  for (int64_t id = 0; id < 30; id += 3) {
    ASSERT_TRUE(engine
                    ->Update("scores",
                             {Value::Int(id), Value::Double(5000.0 + id)})
                    .ok());
  }

  // The pinned gather is a true snapshot: identical results, same order.
  auto after_r = engine->SearchAt(view, "tie", 15);
  ASSERT_TRUE(after_r.ok());
  const std::vector<core::ScoredRow> after = std::move(after_r).value();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].pk, before[i].pk) << "rank " << i;
    EXPECT_EQ(after[i].score, before[i].score) << "rank " << i;
  }

  // A fresh pin observes the churn (and a larger watermark).
  core::ShardedReadView fresh = engine->PinReadViewAll();
  EXPECT_GT(fresh.watermark, view.watermark);
  auto now_r = engine->SearchAt(fresh, "tie", 15);
  ASSERT_TRUE(now_r.ok());
  EXPECT_EQ(std::move(now_r).value().front().score, 5027.0);
}

TEST(ShardedPinnedViewTest, QueryPoolScatterMatchesSequential) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 300;
  cfg.vocab = 150;
  cfg.terms_per_doc = 10;

  core::ShardedSvrEngineOptions seq;
  seq.num_shards = 4;
  seq.shard.index_options.chunk.chunking.min_chunk_size = 1;
  core::ShardedSvrEngineOptions pooled = seq;
  pooled.num_query_threads = 3;

  auto e1 = workload::SetupShardedChurnEngine(seq, cfg);
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  auto e2 = workload::SetupShardedChurnEngine(pooled, cfg);
  ASSERT_TRUE(e2.ok()) << e2.status().ToString();

  // Same data, same queries: the pooled scatter must return the exact
  // sequential answer. Issue from several threads to exercise
  // concurrent RunAll batches (TSan target).
  std::vector<std::thread> askers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    askers.emplace_back([&, t] {
      Random rng(77 * (t + 1));
      for (int i = 0; i < 25; ++i) {
        const std::string kw =
            "t" + std::to_string(rng.Uniform(20)) + " t" +
            std::to_string(rng.Uniform(20));
        auto r1 = e1.value()->Search(kw, 10);
        auto r2 = e2.value()->Search(kw, 10);
        if (!r1.ok() || !r2.ok()) {
          ++failures;
          continue;
        }
        const auto& a = r1.value();
        const auto& b = r2.value();
        if (a.size() != b.size()) {
          ++failures;
          continue;
        }
        for (size_t j = 0; j < a.size(); ++j) {
          if (a[j].pk != b[j].pk || a[j].score != b[j].score) ++failures;
        }
      }
    });
  }
  for (auto& t : askers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- fully-merged sweep (list-state retirement) ------------------------

class ListStateSweepTest : public ::testing::TestWithParam<index::Method> {
};

TEST_P(ListStateSweepTest, FullyMergedDocsRetireTheirEntries) {
  workload::ConcurrentChurnConfig cfg;
  cfg.initial_docs = 400;
  cfg.vocab = 120;
  cfg.terms_per_doc = 10;
  core::SvrEngineOptions opt;
  opt.method = GetParam();
  opt.index_options.chunk.chunking.min_chunk_size = 1;
  auto engine_r = workload::SetupChurnEngine(opt, cfg);
  ASSERT_TRUE(engine_r.ok()) << engine_r.status().ToString();
  auto engine = std::move(engine_r).value();

  auto list_state_size = [&]() -> uint64_t {
    if (auto* c = dynamic_cast<index::ChunkIndexBase*>(
            engine->text_index())) {
      return c->ListStateSize();
    }
    auto* st = dynamic_cast<index::ScoreThresholdIndex*>(
        engine->text_index());
    return st != nullptr ? st->ListStateSize() : 0;
  };

  // Move many documents into the short lists (big score climbs).
  for (int64_t id = 0; id < 200; ++id) {
    ASSERT_TRUE(engine
                    ->Update("scores", {Value::Int(id),
                                        Value::Double(500000.0 + id)})
                    .ok());
  }
  const uint64_t entries_before = list_state_size();
  ASSERT_GT(entries_before, 0u);

  // Merge every term: each moved doc's postings land at its current
  // position; the sweep must retire the now-redundant in_short entries
  // instead of leaving them until a RebuildIndex (the PR-2 behaviour).
  ASSERT_TRUE(engine->text_index()->MergeAllTerms().ok());
  EXPECT_EQ(engine->text_index()->ShortPostingCount(), 0u);
  const uint64_t entries_after = list_state_size();
  EXPECT_LT(entries_after, entries_before);
  EXPECT_GT(engine->text_index()->stats().list_state_retired, 0u);

  // Correctness after retirement: queries still match the oracle, and a
  // *second* round of moves over retired docs rebuilds entries cleanly.
  for (int64_t id = 0; id < 200; id += 2) {
    ASSERT_TRUE(engine
                    ->Update("scores", {Value::Int(id),
                                        Value::Double(900000.0 + id)})
                    .ok());
  }
  core::BruteForceOracle oracle(engine->corpus(), engine->score_table());
  const bool with_ts =
      engine->text_index()->name().find("TermScore") != std::string::npos;
  Random rng(5);
  for (int i = 0; i < 20; ++i) {
    index::Query q;
    q.conjunctive = true;
    const TermId t =
        engine->vocabulary()->Lookup("t" + std::to_string(rng.Uniform(20)));
    if (t == text::Vocabulary::kUnknownTerm) continue;
    q.terms.push_back(t);
    std::vector<index::SearchResult> got, want;
    ASSERT_TRUE(engine->text_index()->TopK(q, 25, &got).ok());
    ASSERT_TRUE(oracle.TopK(q, 25, with_ts, &want).ok());
    ASSERT_EQ(got.size(), want.size()) << "term " << t;
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].doc, want[j].doc) << "term " << t << " rank " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ListStateMethods, ListStateSweepTest,
                         ::testing::Values(index::Method::kChunk,
                                           index::Method::kChunkTermScore,
                                           index::Method::kScoreThreshold));

}  // namespace
}  // namespace svr
