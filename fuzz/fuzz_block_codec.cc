// Fuzz target over the posting-list decode surface (docs/
// posting_format.md): the v1 varint readers and the v2 block cursors
// both consume blob bytes that queries read straight out of the buffer
// pool, so every cursor must tolerate arbitrary / truncated / hostile
// list bytes without crashing, over-reading its blob, or spinning.
//
// The harness writes the fuzz input as a blob and drives every cursor
// kind (ID, ID+ts, chunk, score) in both formats over it, including the
// SeekTo / SeekInGroup / SkipGroup skip paths, which exercise the v2
// skip-header arithmetic against adversarial headers. Work is bounded:
// a cursor that takes more successful steps than the input could
// plausibly encode is an infinite-loop bug and trips FUZZ_CHECK.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "fuzz/standalone_driver.h"
#include "index/posting_codec.h"
#include "index/posting_cursor.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace {

using svr::ChunkId;
using svr::DocId;
using svr::PostingFormat;
using svr::index::ChunkGroup;
using svr::index::ChunkPostingCursor;
using svr::index::CursorScratch;
using svr::index::IdPosting;
using svr::index::IdPostingCursor;
using svr::index::ScoreCursorScratch;
using svr::index::ScorePosting;
using svr::index::ScorePostingCursor;

#define FUZZ_CHECK(cond)           \
  do {                             \
    if (!(cond)) __builtin_trap(); \
  } while (0)

/// Ceiling on successful cursor steps for an input of `size` bytes.
/// Every decoded posting consumes at least one input byte somewhere
/// (v1: its own varint; v2: its share of a block payload), so a cursor
/// that keeps yielding postings past this bound is looping on the spot.
size_t WorkBound(size_t size) { return 16 * size + 1024; }

struct Fixture {
  explicit Fixture(const uint8_t* data, size_t size)
      : store(4096), pool(&store, 1 << 16), blobs(&pool) {
    auto r = blobs.Write(
        svr::Slice(reinterpret_cast<const char*>(data), size));
    ok = r.ok();
    if (ok) ref = r.value();
  }

  svr::storage::InMemoryPageStore store;
  svr::storage::BufferPool pool;
  svr::storage::BlobStore blobs;
  svr::storage::BlobRef ref;
  bool ok = false;
};

void DriveIdCursor(Fixture* fx, bool with_ts, PostingFormat format,
                   size_t bound, DocId seek_target) {
  auto scratch = std::make_unique<CursorScratch>();
  {
    IdPostingCursor cur(fx->blobs.NewReader(fx->ref), with_ts, format,
                        scratch.get());
    if (cur.Init().ok()) {
      size_t steps = 0;
      while (cur.Valid()) {
        (void)cur.doc();
        (void)cur.term_score();
        if (!cur.Next().ok()) break;
        FUZZ_CHECK(++steps <= bound);
      }
    }
  }
  // Fresh cursor: seek into the middle, then drain what is left.
  IdPostingCursor cur(fx->blobs.NewReader(fx->ref), with_ts, format,
                      scratch.get());
  if (!cur.Init().ok()) return;
  if (!cur.SeekTo(seek_target).ok()) return;
  size_t steps = 0;
  while (cur.Valid()) {
    if (!cur.Next().ok()) break;
    FUZZ_CHECK(++steps <= bound);
  }
}

void DriveChunkCursor(Fixture* fx, bool with_ts, PostingFormat format,
                      size_t bound, DocId seek_target, uint32_t choices) {
  auto scratch = std::make_unique<CursorScratch>();
  ChunkPostingCursor cur(fx->blobs.NewReader(fx->ref), with_ts, format,
                         scratch.get());
  if (!cur.Init().ok()) return;
  size_t steps = 0;
  while (cur.HasGroup()) {
    (void)cur.cid();
    // Rotate through the three ways a query consumes a group: full
    // scan, skip-without-reading, and seek-then-scan.
    switch (choices % 3) {
      case 0:
        while (cur.Valid()) {
          (void)cur.doc();
          (void)cur.term_score();
          if (!cur.Next().ok()) return;
          FUZZ_CHECK(++steps <= bound);
        }
        break;
      case 1:
        if (!cur.SkipGroup().ok()) return;
        break;
      default:
        if (!cur.SeekInGroup(seek_target).ok()) return;
        while (cur.Valid()) {
          if (!cur.Next().ok()) return;
          FUZZ_CHECK(++steps <= bound);
        }
        break;
    }
    choices /= 3;
    if (!cur.NextGroup().ok()) return;
    FUZZ_CHECK(++steps <= bound);
  }
}

void DriveScoreCursor(Fixture* fx, PostingFormat format, size_t bound,
                      double seek_score, DocId seek_doc) {
  auto scratch = std::make_unique<ScoreCursorScratch>();
  {
    ScorePostingCursor cur(fx->blobs.NewReader(fx->ref), format,
                           scratch.get());
    if (cur.Init().ok()) {
      size_t steps = 0;
      while (cur.Valid()) {
        (void)cur.score();
        (void)cur.doc();
        if (!cur.Next().ok()) break;
        FUZZ_CHECK(++steps <= bound);
      }
    }
  }
  ScorePostingCursor cur(fx->blobs.NewReader(fx->ref), format,
                         scratch.get());
  if (!cur.Init().ok()) return;
  if (!cur.SeekTo(seek_score, seek_doc).ok()) return;
  size_t steps = 0;
  while (cur.Valid()) {
    if (!cur.Next().ok()) break;
    FUZZ_CHECK(++steps <= bound);
  }
}

std::vector<std::string> Seeds() {
  std::vector<std::string> seeds;
  // 129 postings crosses the v2 128-posting block boundary, so the
  // mutated corpus reaches multi-block headers from the first run.
  std::vector<DocId> docs;
  std::vector<IdPosting> id_ts;
  std::vector<ScorePosting> scored;
  DocId d = 0;
  for (int i = 0; i < 129; ++i) {
    d += 1 + static_cast<DocId>(i % 7);
    docs.push_back(d);
    id_ts.push_back({d, static_cast<float>(i) / 129.0f});
    scored.push_back({1000.0 - i, d});
  }
  std::vector<ChunkGroup> groups(2);
  groups[0].cid = 9;
  groups[0].postings.assign(id_ts.begin(), id_ts.begin() + 70);
  groups[1].cid = 3;
  groups[1].postings.assign(id_ts.begin() + 70, id_ts.end());
  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    std::string out;
    svr::index::EncodeIdList(docs, &out, fmt);
    seeds.push_back(out);
    out.clear();
    svr::index::EncodeIdTsList(id_ts, /*with_ts=*/true, &out, fmt);
    seeds.push_back(out);
    out.clear();
    svr::index::EncodeScoreList(scored, &out, fmt);
    seeds.push_back(out);
    out.clear();
    svr::index::EncodeChunkList(groups, /*with_ts=*/true, &out, fmt);
    seeds.push_back(out);
  }
  // A mid-block truncation of the v2 ID list, and the empty blob.
  std::string cut = seeds[4];
  cut.resize(cut.size() / 2);
  seeds.push_back(cut);
  seeds.push_back(std::string());
  return seeds;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  Fixture fx(data, size);
  if (!fx.ok) return 0;

  const size_t bound = WorkBound(size);
  // Derive seek targets and chunk-consumption choices from the input so
  // the fuzzer controls the skip paths too.
  DocId seek_target = 0;
  uint32_t choices = 0;
  for (size_t i = 0; i < size && i < 8; ++i) {
    seek_target = (seek_target << 8) | data[i];
    choices = choices * 31 + data[size - 1 - i];
  }
  const double seek_score = static_cast<double>(choices % 2048);

  for (PostingFormat fmt : {PostingFormat::kV1, PostingFormat::kV2}) {
    for (bool with_ts : {false, true}) {
      DriveIdCursor(&fx, with_ts, fmt, bound, seek_target);
      DriveChunkCursor(&fx, with_ts, fmt, bound, seek_target, choices);
    }
    DriveScoreCursor(&fx, fmt, bound, seek_score, seek_target);
  }
  return 0;
}

SVR_FUZZ_STANDALONE_MAIN(Seeds)
