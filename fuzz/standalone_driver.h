#ifndef SVR_FUZZ_STANDALONE_DRIVER_H_
#define SVR_FUZZ_STANDALONE_DRIVER_H_

// Fallback driver for toolchains without libFuzzer (the gcc CI legs and
// plain local builds): each fuzz target still exports the standard
// LLVMFuzzerTestOneInput entry point, and this header supplies a main()
// that (a) replays every file named on the command line — exactly what
// CI does with the checked-in corpus — and (b) runs a bounded,
// deterministic mutation loop over the target's built-in seeds, so even
// the non-clang legs get a little adversarial coverage per run. Under
// clang, CMake compiles the same source with -fsanitize=fuzzer and
// defines SVR_HAVE_LIBFUZZER, which suppresses this main() in favour of
// libFuzzer's.
//
// Usage from a fuzz target:
//   static std::vector<std::string> Seeds();   // built-in seed inputs
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t*, size_t);
//   SVR_FUZZ_STANDALONE_MAIN(Seeds)
//
// The driver also understands `--write_seeds <dir>`, which dumps the
// built-in seeds as files — how fuzz/corpus/ was generated.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace svr::fuzz {

/// xorshift64*: deterministic across platforms, no <random> needed.
inline uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

inline void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const uint8_t*>(input.data()), input.size());
}

/// One mutation step: flip, overwrite, truncate, duplicate or extend.
inline void Mutate(std::string* input, uint64_t* rng) {
  if (input->empty()) {
    input->push_back(static_cast<char>(NextRand(rng)));
    return;
  }
  switch (NextRand(rng) % 5) {
    case 0:  // bit flip
      (*input)[NextRand(rng) % input->size()] ^=
          static_cast<char>(1u << (NextRand(rng) % 8));
      break;
    case 1:  // byte overwrite
      (*input)[NextRand(rng) % input->size()] =
          static_cast<char>(NextRand(rng));
      break;
    case 2:  // truncate
      input->resize(NextRand(rng) % input->size());
      break;
    case 3: {  // duplicate a chunk
      const size_t at = NextRand(rng) % input->size();
      const size_t len =
          1 + NextRand(rng) % (input->size() - at < 16 ? input->size() - at
                                                       : 16);
      input->insert(at, input->substr(at, len));
      break;
    }
    default:  // append junk
      for (int i = 0; i < 4; ++i) {
        input->push_back(static_cast<char>(NextRand(rng)));
      }
      break;
  }
}

inline int StandaloneMain(int argc, char** argv,
                          const std::vector<std::string>& seeds) {
  if (argc >= 3 && std::strcmp(argv[1], "--write_seeds") == 0) {
    for (size_t i = 0; i < seeds.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "/seed_%03zu", i);
      std::ofstream out(std::string(argv[2]) + name, std::ios::binary);
      out.write(seeds[i].data(),
                static_cast<std::streamsize>(seeds[i].size()));
      if (!out) {
        std::fprintf(stderr, "cannot write seed %zu\n", i);
        return 1;
      }
    }
    std::printf("wrote %zu seeds to %s\n", seeds.size(), argv[2]);
    return 0;
  }

  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::string input((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunOne(input);
    ++replayed;
  }

  // Bounded deterministic mutation loop over the built-in seeds.
  // FUZZ_ITERS=0 disables it (pure corpus replay).
  size_t iters = 2000;
  if (const char* env = std::getenv("FUZZ_ITERS")) {
    iters = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  uint64_t rng = 0x5eedf00ddeadbeefULL;
  size_t mutated = 0;
  for (size_t i = 0; i < iters; ++i) {
    std::string input =
        seeds.empty() ? std::string() : seeds[i % seeds.size()];
    const size_t steps = 1 + NextRand(&rng) % 8;
    for (size_t s = 0; s < steps; ++s) Mutate(&input, &rng);
    RunOne(input);
    ++mutated;
  }
  for (const std::string& seed : seeds) RunOne(seed);
  std::printf("standalone fuzz driver: %zu corpus file(s), %zu seed(s), "
              "%zu mutation(s) — OK\n",
              replayed, seeds.size(), mutated);
  return 0;
}

}  // namespace svr::fuzz

#ifdef SVR_HAVE_LIBFUZZER
#define SVR_FUZZ_STANDALONE_MAIN(seed_fn)
#else
#define SVR_FUZZ_STANDALONE_MAIN(seed_fn)                  \
  int main(int argc, char** argv) {                        \
    return svr::fuzz::StandaloneMain(argc, argv, seed_fn()); \
  }
#endif

#endif  // SVR_FUZZ_STANDALONE_DRIVER_H_
