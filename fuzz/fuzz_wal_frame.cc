// Fuzz target over the WAL decode surface (docs/durability.md): the
// frame scanner (ScanWal) and the statement body parser
// (DecodeStatement) both consume bytes that recovery reads straight off
// disk after a crash, so they must tolerate arbitrary torn / flipped /
// hostile input without crashing, over-reading, or mis-reporting the
// truncation point. The target also checks the scan-level contract as
// executable properties, so the fuzzer hunts for logic violations, not
// just memory errors.

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "durability/wal_format.h"
#include "fuzz/standalone_driver.h"

namespace {

using svr::Slice;
namespace dur = svr::durability;

Slice AsSlice(const uint8_t* data, size_t size) {
  return Slice(reinterpret_cast<const char*>(data), size);
}

#define FUZZ_CHECK(cond)                 \
  do {                                   \
    if (!(cond)) __builtin_trap();       \
  } while (0)

/// Invariants every scan result must satisfy, whatever the input.
void CheckScanInvariants(const Slice& input, const dur::WalScan& scan) {
  FUZZ_CHECK(scan.clean_bytes <= input.size());
  // Every record the scanner accepted came from a CRC-valid frame whose
  // payload parsed; re-encoding it must therefore be safe (and is how
  // checkpoints re-emit recovered statements).
  for (const dur::WalStatement& r : scan.records) {
    std::string reencoded;
    dur::EncodeStatement(r, &reencoded);
  }
}

std::vector<std::string> Seeds() {
  std::vector<std::string> seeds;
  // A realistic two-record log: one insert, one delete.
  {
    dur::WalStatement ins;
    ins.kind = dur::StatementKind::kInsert;
    ins.seq = 1;
    ins.commit_ts = 41;
    ins.table = "docs";
    std::string payload;
    dur::EncodeStatement(ins, &payload);
    std::string log;
    dur::AppendFrame(&log, Slice(payload));
    dur::WalStatement del;
    del.kind = dur::StatementKind::kDelete;
    del.seq = 2;
    del.commit_ts = 42;
    del.table = "docs";
    del.pk = 7;
    payload.clear();
    dur::EncodeStatement(del, &payload);
    dur::AppendFrame(&log, Slice(payload));
    seeds.push_back(log);
  }
  // A checkpoint header/footer pair.
  {
    dur::WalStatement hdr;
    hdr.kind = dur::StatementKind::kCheckpointHeader;
    hdr.header_seq = 10;
    hdr.header_ts = 99;
    std::string payload;
    dur::EncodeStatement(hdr, &payload);
    std::string log;
    dur::AppendFrame(&log, Slice(payload));
    dur::WalStatement ftr;
    ftr.kind = dur::StatementKind::kCheckpointFooter;
    ftr.footer_records = 1;
    payload.clear();
    dur::EncodeStatement(ftr, &payload);
    dur::AppendFrame(&log, Slice(payload));
    seeds.push_back(log);
  }
  // A torn tail: a full frame plus half of the next one.
  {
    std::string log = seeds[0];
    log.resize(log.size() / 2 + 1);
    seeds.push_back(log);
  }
  // Raw statement bodies (no frame), for the DecodeStatement path.
  {
    dur::WalStatement upd;
    upd.kind = dur::StatementKind::kUpdate;
    upd.seq = 3;
    upd.table = "t";
    std::string payload;
    dur::EncodeStatement(upd, &payload);
    seeds.push_back(payload);
  }
  seeds.push_back(std::string());  // empty log
  return seeds;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const Slice input = AsSlice(data, size);

  // 1. The input as a raw log byte stream.
  dur::WalScan scan;
  dur::ScanWal(input, &scan);
  CheckScanInvariants(input, scan);

  // 2. The input as a bare statement body (the payload DecodeStatement
  // sees once a frame's CRC passed).
  dur::WalStatement stmt;
  const svr::Status decode_st = dur::DecodeStatement(input, &stmt);

  // 3. The input as a *payload*: frame it ourselves and check the
  // contract — a complete CRC-valid frame either replays (payload
  // parses) or stops the scan with kCorruption (payload rejected); a
  // strict byte prefix can tear the frame but must never mis-checksum
  // it, so it yields OK or kDataLoss, never kCorruption.
  std::string framed;
  dur::AppendFrame(&framed, input);
  FUZZ_CHECK(dur::FramedSize(size) == framed.size());
  dur::WalScan full;
  dur::ScanWal(Slice(framed), &full);
  if (decode_st.ok()) {
    FUZZ_CHECK(full.tail.ok());
    FUZZ_CHECK(full.records.size() == 1);
    FUZZ_CHECK(full.clean_bytes == framed.size());
  } else {
    FUZZ_CHECK(full.tail.IsCorruption());
    FUZZ_CHECK(full.records.empty());
  }
  const size_t prefix_len = size % framed.size();  // < framed.size()
  dur::WalScan prefix;
  dur::ScanWal(Slice(framed.data(), prefix_len), &prefix);
  FUZZ_CHECK(prefix.tail.ok() || prefix.tail.IsDataLoss());
  FUZZ_CHECK(prefix.records.empty());
  FUZZ_CHECK(prefix.clean_bytes == 0);
  return 0;
}

SVR_FUZZ_STANDALONE_MAIN(Seeds)
